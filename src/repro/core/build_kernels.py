"""Array-native label-construction kernels.

Every labelling construction in this repo — sound PPL
(:mod:`repro.baselines.ppl`), ParentPPL, the QbS labelling of
Algorithm 2 (:mod:`repro.core.labelling`), and the dynamic repair
resume (:mod:`repro.dynamic.incremental`) — reduces to the same
primitive: a BFS from a root whose *interior* vertices are restricted
to an allowed set, compared against the unrestricted BFS. A vertex is
labelled exactly when the restricted distance equals the true
distance. The two former per-vertex Python loops (``restricted_bfs``
and ``label_bfs``'s two-queue walk) instantiated this with different
allowed sets — lower-ranked vertices for PPL, non-landmarks for QbS —
and had quietly diverged; this module is now the single home for the
prune predicate.

Two execution strategies share the semantics:

* :func:`restricted_distances` — one root, frontier-at-a-time numpy
  (the scalar reference and the primitive for single-root callers).
* :func:`_lockstep_sweep` — 64 roots per pass. Each vertex carries one
  ``uint64`` whose bit *j* means "reached by root *j*"; a whole BFS
  level for all 64 roots is one CSR gather plus an OR-reduction, and
  the full and restricted sweeps advance in lockstep so the label test
  (``fresh_full & fresh_restricted``) is a single AND per level. This
  is the bit-parallel batching of Akiba et al. (SIGMOD 2013) adapted
  to the restricted-interior rule. Root batches are independent for
  the sound variant, so :func:`build_sound_labels` can fan them out
  over a ``multiprocessing`` pool.

Construction output is flat CSR ``(offsets, flat_ranks, flat_dists)``
sorted by ``(vertex, rank)`` — exactly what the batch kernel's
``LabelArrays.from_flat`` and the packed store consume, so the build
result needs zero conversion downstream. :class:`RaggedView` /
:class:`ParentsView` wrap those flats as the sequence-of-sequences the
scalar query paths index.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Sequence
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._util import UNREACHED, Stopwatch, TimeBudget
from ..errors import IndexBuildError
from ..graph.traversal import expand_frontier
from ..obs import get_registry, span

__all__ = [
    "BATCH_BITS",
    "RaggedView",
    "ParentsRow",
    "ParentsView",
    "restricted_distances",
    "build_sound_labels",
    "qbs_batch_levels",
]

#: Roots per bit-parallel pass (width of the uint64 visited masks).
BATCH_BITS = 64

_ALL_BITS = np.uint64(0xFFFFFFFFFFFFFFFF)
_ZERO = np.uint64(0)

#: The dense expansion path gathers all ``m`` edge masks; it wins once
#: the frontier touches at least this fraction of the edge set.
_DENSE_EDGE_FRACTION = 16


# ----------------------------------------------------------------------
# Flat-label views (the construction-side container contract)
# ----------------------------------------------------------------------

class RaggedView(Sequence):
    """Per-vertex rows over ``(offsets, flat)`` CSR arrays.

    ``rows[v]`` slices the flat array and returns an ndarray the
    merge-join query code indexes exactly like the list-of-lists the
    families historically held. ``flat`` may be any array-like
    supporting slicing (an ndarray here; the packed store passes its
    block-cached cold arrays).
    """

    __slots__ = ("offsets", "flat")

    def __init__(self, offsets: np.ndarray, flat) -> None:
        self.offsets = offsets
        self.flat = flat

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, vertex):
        if isinstance(vertex, slice):
            raise TypeError("ragged label rows index by vertex only")
        vertex = int(vertex)
        if vertex < 0:
            vertex += len(self)
        if not 0 <= vertex < len(self):
            raise IndexError(vertex)
        return self.flat[int(self.offsets[vertex]):
                         int(self.offsets[vertex + 1])]

    def __eq__(self, other):
        # Value equality against any sequence-of-rows (tests compare
        # label containers against list-of-lists snapshots).
        try:
            if len(other) != len(self):
                return False
        except TypeError:
            return NotImplemented
        return all(np.array_equal(self[v], other[v])
                   for v in range(len(self)))

    __hash__ = None


class ParentsRow(Sequence):
    """One vertex's per-entry parent tuples, sliced on demand."""

    __slots__ = ("_base", "_count", "_parent_offsets", "_parents")

    def __init__(self, base: int, count: int, parent_offsets,
                 parents) -> None:
        self._base = base
        self._count = count
        self._parent_offsets = parent_offsets
        self._parents = parents

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, i):
        if isinstance(i, slice):
            raise TypeError("parent rows index by entry only")
        i = int(i)
        if i < 0:
            i += self._count
        if not 0 <= i < self._count:
            raise IndexError(i)
        entry = self._base + i
        bounds = self._parent_offsets[entry:entry + 2]
        return tuple(
            int(w) for w in
            self._parents[int(bounds[0]):int(bounds[1])])


class ParentsView(Sequence):
    """``label_parents[v][i]`` facade over flat parent arrays."""

    __slots__ = ("offsets", "parent_offsets", "parents")

    def __init__(self, offsets: np.ndarray, parent_offsets,
                 parents) -> None:
        self.offsets = offsets
        self.parent_offsets = parent_offsets
        self.parents = parents

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, vertex):
        if isinstance(vertex, slice):
            raise TypeError("parent views index by vertex only")
        vertex = int(vertex)
        if vertex < 0:
            vertex += len(self)
        if not 0 <= vertex < len(self):
            raise IndexError(vertex)
        base = int(self.offsets[vertex])
        count = int(self.offsets[vertex + 1]) - base
        return ParentsRow(base, count, self.parent_offsets, self.parents)


# ----------------------------------------------------------------------
# Single-root primitive (shared prune semantics, frontier-at-a-time)
# ----------------------------------------------------------------------

def restricted_distances(indptr: np.ndarray, indices: np.ndarray,
                         root: int, may_expand: np.ndarray,
                         out: Optional[np.ndarray] = None) -> np.ndarray:
    """BFS distances from ``root`` through allowed interiors only.

    ``dist[u]`` is the length of the shortest ``root``-``u`` path whose
    every *interior* vertex ``w`` satisfies ``may_expand[w]`` (the root
    itself always expands; endpoints are unconstrained), or
    :data:`~repro._util.UNREACHED`. With ``may_expand = rank_of > r``
    this is PPL's rank-restricted BFS; with ``may_expand =
    ~is_landmark`` it is the landmark-avoiding reachability of QbS
    Algorithm 2 — a vertex deserves the label ``(root, d)`` exactly
    when this distance equals the unrestricted one.
    """
    n = len(indptr) - 1
    if out is None:
        dist = np.full(n, UNREACHED, dtype=np.int32)
    else:
        dist = out
        dist.fill(UNREACHED)
    dist[root] = 0
    frontier = np.array([root], dtype=np.int32)
    depth = 0
    while len(frontier):
        depth += 1
        neighbors = expand_frontier(indptr, indices, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = depth
        frontier = fresh[may_expand[fresh]]
    return dist


# ----------------------------------------------------------------------
# Bit-parallel lockstep sweep (64 roots per pass)
# ----------------------------------------------------------------------

def _concat_neighbors(indptr: np.ndarray, indices: np.ndarray,
                      vertices: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Adjacency lists of ``vertices`` concatenated in CSR order.

    Returns ``(targets, counts)`` where ``counts[i]`` is the degree of
    ``vertices[i]`` and ``targets`` lists their neighbours contiguously.
    """
    starts = indptr[vertices].astype(np.int64)
    counts = (indptr[vertices + 1] - indptr[vertices]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    shifted = np.concatenate((np.zeros(1, dtype=np.int64),
                              np.cumsum(counts)[:-1]))
    pos = (np.arange(total, dtype=np.int64)
           - np.repeat(shifted, counts) + np.repeat(starts, counts))
    return indices[pos], counts


def _spread(indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray,
            frontier_bits: np.ndarray, active: np.ndarray,
            reached: np.ndarray, scatter_buf: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray]:
    """One bit-parallel expansion level for one sweep.

    ORs the frontier masks into every neighbour, keeps the bits not yet
    in ``reached`` (marking them reached), and returns the fresh
    ``(vertices, bits)``. Dense frontiers gather the whole edge array
    and OR-reduce per CSR row; sparse frontiers scatter into
    ``scatter_buf`` instead, touching only incident edges.
    """
    m = len(indices)
    if len(active) == 0 or m == 0:
        return (np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint64))
    edge_count = int(degrees[active].sum())
    if edge_count == 0:
        return (np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint64))
    if edge_count * _DENSE_EDGE_FRACTION >= m:
        # reduceat over the starts of nonempty rows only: consecutive
        # nonempty starts bound exactly one row's edges (empty rows in
        # between contribute zero length), and the last nonempty row
        # runs to the end of the edge array. Clamping empty-row starts
        # instead would truncate the final nonempty row whenever
        # trailing isolated vertices exist.
        gathered = frontier_bits[indices]
        nonempty = np.nonzero(degrees)[0]
        acc = np.bitwise_or.reduceat(
            gathered, indptr[nonempty].astype(np.int64))
        hit = acc != _ZERO
        touched = nonempty[hit]
        arrive = acc[hit]
    else:
        targets, counts = _concat_neighbors(indptr, indices, active)
        source = np.repeat(frontier_bits[active], counts)
        np.bitwise_or.at(scatter_buf, targets, source)
        touched = np.unique(targets).astype(np.int64)
        arrive = scatter_buf[touched]
        scatter_buf[touched] = _ZERO
    fresh = arrive & ~reached[touched]
    keep = fresh != _ZERO
    fresh_vertices = touched[keep].astype(np.int64)
    fresh_bits = fresh[keep]
    reached[fresh_vertices] |= fresh_bits
    return fresh_vertices, fresh_bits


def _lockstep_sweep(indptr: np.ndarray, indices: np.ndarray,
                    degrees: np.ndarray, roots: np.ndarray,
                    expand_mask: np.ndarray, *,
                    collect_parents: bool = False,
                    budget: Optional[TimeBudget] = None,
                    max_depth: Optional[int] = None,
                    max_depth_error: Optional[str] = None):
    """Full + restricted BFS from ≤64 roots, one uint64 lane per root.

    Yields ``(depth, vertices, labelled_bits, parent_edges)`` per BFS
    level: ``vertices`` (ascending) hold at least one bit that became
    fresh in *both* sweeps at this depth — i.e. roots whose restricted
    distance equals the true distance, the shared label rule.
    ``expand_mask[v]`` says which roots' restricted sweeps may expand
    through ``v`` (callers must OR each root's own bit at its vertex).

    ``parent_edges`` (when ``collect_parents``) is ``(slots, parents,
    bits)``: for each CSR edge out of a labelled vertex whose endpoint
    was full-fresh one level up, the index into ``vertices``, the
    endpoint, and the bits it is a parent for — the ParentPPL parent
    rule, evaluated against the previous level's full frontier.

    Without ``max_depth`` the sweep stops as soon as either frontier
    empties (no further level can produce a label). With it, the sweep
    keeps pace with the full BFS and raises once ``depth`` exceeds the
    limit while vertices remain — matching Algorithm 2's uint8 guard.
    """
    n = len(indptr) - 1
    k = len(roots)
    roots = np.asarray(roots, dtype=np.int64)
    seeds = np.uint64(1) << np.arange(k, dtype=np.uint64)
    reached_full = np.zeros(n, dtype=np.uint64)
    reached_rest = np.zeros(n, dtype=np.uint64)
    frontier_full = np.zeros(n, dtype=np.uint64)
    frontier_rest = np.zeros(n, dtype=np.uint64)
    scatter_buf = np.zeros(n, dtype=np.uint64)
    reached_full[roots] = seeds
    reached_rest[roots] = seeds
    frontier_full[roots] = seeds
    frontier_rest[roots] = seeds

    no_parents = (np.empty(0, dtype=np.int64),
                  np.empty(0, dtype=np.int64),
                  np.empty(0, dtype=np.uint64))
    slot_order = np.argsort(roots, kind="stable")
    yield 0, roots[slot_order], seeds[slot_order], no_parents

    active_full = roots
    active_rest = roots
    depth = 0
    while len(active_full) and (len(active_rest) or max_depth is not None):
        depth += 1
        if budget is not None:
            budget.check()
        if max_depth is not None and depth > max_depth:
            raise IndexBuildError(
                max_depth_error
                or f"bit-parallel BFS exceeded depth {max_depth}")
        fresh_v_full, fresh_b_full = _spread(
            indptr, indices, degrees, frontier_full, active_full,
            reached_full, scatter_buf)
        fresh_v_rest, fresh_b_rest = _spread(
            indptr, indices, degrees, frontier_rest, active_rest,
            reached_rest, scatter_buf)
        # Restricted distances never beat the full BFS, so a bit fresh
        # in both sweeps at the same depth has restricted == full.
        common, if_full, if_rest = np.intersect1d(
            fresh_v_full, fresh_v_rest, assume_unique=True,
            return_indices=True)
        labelled_bits = fresh_b_full[if_full] & fresh_b_rest[if_rest]
        keep = labelled_bits != _ZERO
        labelled_vertices = common[keep]
        labelled_bits = labelled_bits[keep]
        if collect_parents and len(labelled_vertices):
            # frontier_full still holds the previous level's fresh
            # bits: exactly the vertices at true depth - 1.
            targets, counts = _concat_neighbors(
                indptr, indices, labelled_vertices)
            slots = np.repeat(
                np.arange(len(labelled_vertices), dtype=np.int64),
                counts)
            bits = labelled_bits[slots] & frontier_full[targets]
            hit = bits != _ZERO
            parent_edges = (slots[hit], targets[hit].astype(np.int64),
                            bits[hit])
        else:
            parent_edges = no_parents
        frontier_full[active_full] = _ZERO
        frontier_full[fresh_v_full] = fresh_b_full
        active_full = fresh_v_full
        frontier_rest[active_rest] = _ZERO
        masked = fresh_b_rest & expand_mask[fresh_v_rest]
        forward = masked != _ZERO
        active_rest = fresh_v_rest[forward]
        frontier_rest[active_rest] = masked[forward]
        if len(labelled_vertices):
            yield depth, labelled_vertices, labelled_bits, parent_edges


def _expand_bits(masks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Explode uint64 masks into ``(rows, bit_columns)`` pairs."""
    lanes = np.arange(BATCH_BITS, dtype=np.uint64)
    table = ((masks[:, None] >> lanes) & np.uint64(1)).astype(bool)
    return np.nonzero(table)


# ----------------------------------------------------------------------
# Sound PPL batches (rank-prefix restriction)
# ----------------------------------------------------------------------

def _rank_expand_mask(rank_of: np.ndarray, r0: int, roots: np.ndarray,
                      seeds: np.ndarray) -> np.ndarray:
    """Per-vertex uint64 of the batch roots allowed to expand through it.

    Root ``r0 + j`` may pass through interiors ranked strictly below it,
    i.e. vertex ``v`` expands bit ``j`` iff ``rank_of[v] > r0 + j`` —
    a prefix of the lanes, so the mask is ``(1 << shift) - 1`` with
    ``shift = clip(rank_of - r0, 0, 64)``. Each root additionally
    expands its own lane (the BFS origin is never an interior).
    """
    shift = np.clip(rank_of - r0, 0, BATCH_BITS)
    low = ((np.uint64(1) << np.minimum(shift, BATCH_BITS - 1)
            .astype(np.uint64)) - np.uint64(1))
    mask = np.where(shift >= BATCH_BITS, _ALL_BITS, low)
    mask[roots] |= seeds
    return mask


def _sound_batch(indptr: np.ndarray, indices: np.ndarray,
                 degrees: np.ndarray, order: np.ndarray,
                 rank_of: np.ndarray, r0: int, k: int, *,
                 with_parents: bool = False,
                 budget: Optional[TimeBudget] = None) -> Dict[str, np.ndarray]:
    """Labels contributed by the rank batch ``[r0, r0 + k)``.

    Returns level-ordered (not yet globally sorted) entry arrays;
    :func:`build_sound_labels` concatenates batches and sorts once.
    """
    roots = np.asarray(order[r0:r0 + k], dtype=np.int64)
    seeds = np.uint64(1) << np.arange(k, dtype=np.uint64)
    expand_mask = _rank_expand_mask(rank_of, r0, roots, seeds)
    vertices: List[np.ndarray] = []
    ranks: List[np.ndarray] = []
    dists: List[np.ndarray] = []
    parent_counts: List[np.ndarray] = []
    parent_flat: List[np.ndarray] = []
    for depth, lv, lm, pedges in _lockstep_sweep(
            indptr, indices, degrees, roots, expand_mask,
            collect_parents=with_parents, budget=budget):
        erows, ecols = _expand_bits(lm)
        vertices.append(lv[erows])
        ranks.append(r0 + ecols.astype(np.int64))
        dists.append(np.full(len(erows), depth, dtype=np.int32))
        if with_parents:
            entry_keys = erows * BATCH_BITS + ecols
            pslots, ptargets, pbits = pedges
            prow, pcol = _expand_bits(pbits)
            pkeys = pslots[prow] * BATCH_BITS + pcol
            # Stable sort groups parents per (vertex, rank) entry while
            # preserving CSR neighbour order inside each group.
            grouping = np.argsort(pkeys, kind="stable")
            slot_of_entry = np.searchsorted(entry_keys, pkeys[grouping])
            parent_counts.append(np.bincount(
                slot_of_entry, minlength=len(entry_keys)
            ).astype(np.int64))
            parent_flat.append(ptargets[prow[grouping]])
    out = {
        "vertices": _concat(vertices, np.int64),
        "ranks": _concat(ranks, np.int64),
        "dists": _concat(dists, np.int32),
    }
    if with_parents:
        out["parent_counts"] = _concat(parent_counts, np.int64)
        out["parents"] = _concat(parent_flat, np.int64)
    return out


def _concat(chunks: List[np.ndarray], dtype) -> np.ndarray:
    if not chunks:
        return np.empty(0, dtype=dtype)
    return np.concatenate(chunks).astype(dtype, copy=False)


_POOL_STATE: Dict[str, np.ndarray] = {}


def _init_pool_worker(indptr, indices, degrees, order, rank_of,
                      with_parents) -> None:
    _POOL_STATE.update(indptr=indptr, indices=indices, degrees=degrees,
                       order=order, rank_of=rank_of,
                       with_parents=with_parents)


def _pool_batch(task: Tuple[int, int]) -> Dict[str, np.ndarray]:
    r0, k = task
    return _sound_batch(_POOL_STATE["indptr"], _POOL_STATE["indices"],
                        _POOL_STATE["degrees"], _POOL_STATE["order"],
                        _POOL_STATE["rank_of"], r0, k,
                        with_parents=_POOL_STATE["with_parents"])


def _permute_segments(counts: np.ndarray, flat: np.ndarray,
                      perm: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Reorder variable-length segments of ``flat`` by ``perm``."""
    offsets = np.concatenate((np.zeros(1, dtype=np.int64),
                              np.cumsum(counts, dtype=np.int64)))
    new_counts = counts[perm]
    total = int(new_counts.sum())
    if total == 0:
        return new_counts, np.empty(0, dtype=flat.dtype)
    starts = offsets[perm]
    shifted = np.concatenate((np.zeros(1, dtype=np.int64),
                              np.cumsum(new_counts)[:-1]))
    pos = (np.arange(total, dtype=np.int64)
           - np.repeat(shifted, new_counts)
           + np.repeat(starts, new_counts))
    return new_counts, flat[pos]


def build_sound_labels(graph, order: np.ndarray, *,
                       jobs: Optional[int] = None,
                       budget: Optional[TimeBudget] = None,
                       with_parents: bool = False
                       ) -> Dict[str, np.ndarray]:
    """Sound pruned-path labels for every vertex, 64 roots per pass.

    Returns flat CSR arrays ``{"label_offsets", "label_ranks",
    "label_dists"}`` sorted by ``(vertex, rank)`` — plus
    ``{"parent_offsets", "parents"}`` when ``with_parents`` — the exact
    layout :meth:`LabelArrays.from_flat` and the packed store consume.

    The sound rule makes every root's label test independent of all
    other labels, so rank batches are embarrassingly parallel:
    ``jobs > 1`` fans batches out over a ``multiprocessing`` pool (the
    graph ships once per worker via the pool initializer). The budget
    is enforced per BFS level serially and between batches in pool
    mode.
    """
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    degrees = np.diff(indptr).astype(np.int64)
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n)
    tasks = [(r0, min(BATCH_BITS, n - r0))
             for r0 in range(0, n, BATCH_BITS)]
    registry = get_registry()
    roots_counter = registry.counter(
        "build_roots_processed_total",
        help="Landmark roots swept by the construction kernels.")
    batch_seconds = registry.histogram(
        "build_root_batch_seconds",
        help="Wall time of one 64-root bit-parallel batch.")
    effective_jobs = 1 if jobs is None else max(1, int(jobs))
    results: List[Dict[str, np.ndarray]] = []
    with span("build.root_bfs_loop", roots=n, jobs=effective_jobs,
              batches=len(tasks)):
        if effective_jobs > 1 and len(tasks) > 1:
            ctx = multiprocessing.get_context()
            with ctx.Pool(
                    processes=min(effective_jobs, len(tasks)),
                    initializer=_init_pool_worker,
                    initargs=(indptr, indices, degrees, order, rank_of,
                              with_parents)) as pool:
                for (r0, k), out in zip(
                        tasks, pool.imap(_pool_batch, tasks)):
                    if budget is not None:
                        budget.check()
                    roots_counter.inc(k)
                    results.append(out)
        else:
            for r0, k in tasks:
                with Stopwatch() as sw:
                    results.append(_sound_batch(
                        indptr, indices, degrees, order, rank_of, r0, k,
                        with_parents=with_parents, budget=budget))
                batch_seconds.observe(sw.elapsed)
                roots_counter.inc(k)
    vertices = _concat([r["vertices"] for r in results], np.int64)
    ranks = _concat([r["ranks"] for r in results], np.int64)
    dists = _concat([r["dists"] for r in results], np.int32)
    perm = np.lexsort((ranks, vertices))
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(vertices, minlength=n), out=offsets[1:])
    out = {
        "label_offsets": offsets,
        "label_ranks": ranks[perm],
        "label_dists": dists[perm],
    }
    if with_parents:
        counts = _concat([r["parent_counts"] for r in results], np.int64)
        flat = _concat([r["parents"] for r in results], np.int64)
        new_counts, parents = _permute_segments(counts, flat, perm)
        parent_offsets = np.zeros(len(new_counts) + 1, dtype=np.int64)
        np.cumsum(new_counts, out=parent_offsets[1:])
        out["parent_offsets"] = parent_offsets
        out["parents"] = parents.astype(np.int32)
    return out


# ----------------------------------------------------------------------
# QbS labelling batches (landmark-avoiding restriction)
# ----------------------------------------------------------------------

def qbs_batch_levels(indptr: np.ndarray, indices: np.ndarray,
                     degrees: np.ndarray, roots: np.ndarray,
                     is_landmark: np.ndarray, *,
                     max_depth: Optional[int] = None,
                     max_depth_error: Optional[str] = None):
    """Algorithm 2 BFS levels for ≤64 landmark roots at once.

    The allowed-interior set is ``V \\ R`` (every shortest path counted
    by a label must avoid other landmarks), so a vertex labelled at
    depth ``d`` by root ``j`` is exactly one Algorithm 2 would place in
    ``Q_L``; labelled vertices that are themselves landmarks are the
    meta-graph edge discoveries. Yields ``(depth, vertices, bits)``
    levels starting at depth 0 (the roots themselves — callers skip it
    for labels and meta edges alike).
    """
    roots = np.asarray(roots, dtype=np.int64)
    seeds = np.uint64(1) << np.arange(len(roots), dtype=np.uint64)
    expand_mask = np.where(is_landmark, _ZERO, _ALL_BITS)
    expand_mask[roots] |= seeds
    for depth, lv, lm, _ in _lockstep_sweep(
            indptr, indices, degrees, roots, expand_mask,
            max_depth=max_depth, max_depth_error=max_depth_error):
        yield depth, lv, lm
