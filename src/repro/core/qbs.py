"""The public Query-by-Sketch index.

:class:`QbSIndex` packages the paper's three phases behind two calls:

>>> from repro import Graph, QbSIndex
>>> g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)])
>>> index = QbSIndex.build(g, num_landmarks=2)
>>> spg = index.query(0, 4)
>>> spg.distance
3
>>> sorted(spg.edges)
[(0, 1), (0, 3), (1, 2), (2, 3), (2, 4)]

Offline, :meth:`build` selects landmarks, constructs the labelling
scheme (Algorithm 2, sequential or thread-parallel), assembles the
meta-graph with its precomputed inter-landmark SPGs, and sparsifies the
graph. Online, :meth:`query` sketches (Algorithm 3) and runs the guided
search (Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import Stopwatch
from ..errors import IndexFormatError, QueryError, VertexError
from ..graph.csr import Graph
from .labelling import PathLabelling, build_labelling
from .landmarks import select_landmarks
from .metagraph import MetaGraph, build_meta_graph
from .parallel import build_labelling_parallel
from .search import GuidedSearcher, SearchStats, bidirectional_spg
from .sketch import Sketch, compute_sketch
from .spg import ShortestPathGraph

__all__ = ["QbSIndex", "BuildReport"]


@dataclass
class BuildReport:
    """Timings and sizes recorded while building an index.

    The benchmark harness reads these to fill the construction-time
    and labelling-size columns of Tables 2 and 3.
    """

    num_landmarks: int
    parallel: bool
    labelling_seconds: float
    meta_seconds: float
    sparsify_seconds: float
    total_seconds: float
    label_size_bytes: int
    meta_size_bytes: int
    delta_edges: int

    @property
    def delta_size_bytes(self) -> int:
        """size(Δ) under the paper's 8-bytes-per-edge accounting."""
        return self.delta_edges * 8


class QbSIndex:
    """A built Query-by-Sketch index over one graph."""

    def __init__(self, graph: Graph, labelling: PathLabelling,
                 meta: MetaGraph, sparsified: Graph,
                 report: BuildReport) -> None:
        self._graph = graph
        self._labelling = labelling
        self._meta = meta
        self._sparsified = sparsified
        self._searcher = GuidedSearcher(graph, sparsified, labelling, meta)
        self.report = report

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: Graph, num_landmarks: int = 20,
              strategy: str = "degree", seed=None,
              landmarks: Optional[np.ndarray] = None,
              parallel: bool = False,
              num_threads: Optional[int] = None,
              precompute_delta: bool = True) -> "QbSIndex":
        """Build the index (the paper's offline phase).

        Parameters
        ----------
        graph:
            Input graph (undirected CSR).
        num_landmarks:
            ``|R|``; the paper's default is 20.
        strategy:
            Landmark selection strategy (default: highest degree, as in
            §6.1). Ignored when ``landmarks`` is given explicitly.
        seed:
            Randomness for stochastic strategies.
        landmarks:
            Explicit landmark vertex ids (overrides selection).
        parallel:
            Use the thread-parallel builder (QbS-P of Table 2).
        num_threads:
            Worker count for ``parallel=True``.
        precompute_delta:
            Materialize inter-landmark SPGs (Δ). Disable only for the
            ablation that measures their benefit.
        """
        if landmarks is None:
            chosen = select_landmarks(graph, num_landmarks,
                                      strategy=strategy, seed=seed)
        else:
            chosen = np.asarray(landmarks, dtype=np.int32)

        with Stopwatch() as sw_total:
            with Stopwatch() as sw_label:
                if parallel:
                    labelling = build_labelling_parallel(
                        graph, chosen, num_threads=num_threads
                    )
                else:
                    labelling = build_labelling(graph, chosen)
            with Stopwatch() as sw_meta:
                meta = build_meta_graph(
                    graph, labelling, precompute_delta=precompute_delta
                )
            with Stopwatch() as sw_sparse:
                sparsified = graph.remove_vertices(chosen)
        report = BuildReport(
            num_landmarks=len(chosen),
            parallel=parallel,
            labelling_seconds=sw_label.elapsed,
            meta_seconds=sw_meta.elapsed,
            sparsify_seconds=sw_sparse.elapsed,
            total_seconds=sw_total.elapsed,
            label_size_bytes=labelling.paper_size_bytes(),
            meta_size_bytes=meta.paper_size_bytes(),
            delta_edges=meta.delta_total_edges(),
        )
        return cls(graph, labelling, meta, sparsified, report)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, u: int, v: int) -> ShortestPathGraph:
        """Answer ``SPG(u, v)`` exactly (Definition 2.3)."""
        spg, _ = self.query_with_stats(u, v)
        return spg

    def query_with_stats(self, u: int, v: int, use_budgets: bool = True
                         ) -> Tuple[ShortestPathGraph, SearchStats]:
        """Like :meth:`query`, returning search instrumentation too.

        ``use_budgets=False`` disables the sketch's side-selection
        guidance (ablation of §6.5 gain source (2)); results are
        identical, only traversal effort changes.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return ShortestPathGraph.trivial(u), SearchStats()
        if self._labelling.is_landmark(u) or self._labelling.is_landmark(v):
            # Labels are defined on V \ R (Definition 4.2); the paper
            # leaves landmark endpoints implicit. They are rare
            # (|R| << |V|) and answered exactly by the Bi-BFS fallback.
            stats = SearchStats()
            return bidirectional_spg(self._graph, u, v, stats), stats
        sketch = self.sketch(u, v)
        stats = SearchStats()
        spg = self._searcher.run(sketch, stats, use_budgets=use_budgets)
        return spg, stats

    def sketch(self, u: int, v: int) -> Sketch:
        """Compute the query sketch only (Algorithm 3); for analysis."""
        self._check_vertex(u)
        self._check_vertex(v)
        if self._labelling.is_landmark(u) or self._labelling.is_landmark(v):
            raise QueryError(
                "sketches are defined for non-landmark endpoints"
            )
        return compute_sketch(self._labelling, self._meta, u, v)

    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact shortest-path distance (``None`` when disconnected).

        Uses a fast path that runs only the sketch and the bounded
        bidirectional stage — no SPG is materialized.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return 0
        if self._labelling.is_landmark(u) or self._labelling.is_landmark(v):
            return bidirectional_spg(self._graph, u, v).distance
        sketch = self.sketch(u, v)
        return self._searcher.distance_only(sketch)

    def query_many(self, pairs) -> "list[ShortestPathGraph]":
        """Answer a batch of ``(u, v)`` queries."""
        return [self.query(u, v) for u, v in pairs]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def sparsified_graph(self) -> Graph:
        """``G⁻ = G[V \\ R]`` used by the guided search."""
        return self._sparsified

    @property
    def landmarks(self) -> np.ndarray:
        return self._labelling.landmarks

    @property
    def labelling(self) -> PathLabelling:
        return self._labelling

    @property
    def meta_graph(self) -> MetaGraph:
        return self._meta

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._graph.num_vertices:
            raise VertexError(v, self._graph.num_vertices)

    # ------------------------------------------------------------------
    # Serialization (the engine's pickle-free npz format)
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the index in the engine's pickle-free npz format.

        Historical versions pickled the index; that format could
        execute arbitrary code on load, so it is write-dead. Saving
        routes through :mod:`repro.engine.persist`, producing the same
        self-describing archive every registered family uses.
        """
        from ..engine.persist import save_index
        from ..engine.registry import get_index_class

        index = self
        engine_cls = get_index_class("qbs")
        if not isinstance(index, engine_cls):
            # A bare historical QbSIndex: re-dress it as the engine
            # subclass (same state, by reference) so `to_state` exists.
            index = engine_cls(self._graph, self._labelling, self._meta,
                               self._sparsified, self.report)
        save_index(index, path)

    @classmethod
    def load(cls, path) -> "QbSIndex":
        """Load a saved QbS index (uniform npz format only).

        Files written by the retired pickle format are *detected* by
        the engine loader and refused with a clear rebuild error
        instead of being unpickled — loading untrusted pickle bytes
        executes code.
        """
        from ..engine.persist import load_index

        index = load_index(path)
        if not isinstance(index, cls):
            raise IndexFormatError(
                f"{path}: holds a {type(index).method!r} index, "
                f"not a QbS index"
            )
        return index
