"""Labelling-scheme construction (Algorithm 2 of the paper).

For each landmark ``r`` a single BFS partitions discovered vertices
into two queues:

* ``Q_L`` — vertices reached by at least one shortest path from ``r``
  that passes through **no other landmark**; these receive the label
  ``(r, depth)``;
* ``Q_N`` — vertices whose every shortest path from ``r`` crosses some
  other landmark first; they are traversed (to block re-discovery) but
  not labelled.

Landmarks discovered from the ``Q_L`` side become meta-graph edges with
weight equal to their exact distance from ``r`` (Definition 4.1). The
construction is deterministic for a fixed landmark set (Lemma 5.2),
which is what makes the thread-parallel builder in
:mod:`repro.core.parallel` safe.

The result is stored the way the paper accounts for it: a dense
``|V| x |R|`` uint8 matrix (``|R| * 8`` bits per vertex, §6.1), with
:data:`~repro._util.NO_LABEL` marking absent entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .._util import NO_LABEL, Stopwatch
from ..errors import IndexBuildError
from ..graph.csr import Graph
from ..graph.traversal import expand_frontier
from ..obs import get_registry, span

__all__ = ["PathLabelling", "build_labelling", "label_bfs"]

#: Largest distance representable in a uint8 label (255 is the sentinel).
MAX_LABEL_DISTANCE = 254


@dataclass
class PathLabelling:
    """The path labelling ``L`` plus raw meta-graph edges.

    Attributes
    ----------
    landmarks:
        int32 array of landmark vertex ids; column ``i`` of
        ``label_matrix`` belongs to ``landmarks[i]``.
    landmark_position:
        int32 array of length ``|V|``; position of each landmark in
        ``landmarks`` (or -1 for non-landmarks).
    label_matrix:
        ``(|V|, |R|)`` uint8 array; ``label_matrix[v, i]`` is
        ``d_G(v, landmarks[i])`` when a landmark-avoiding shortest path
        exists, else :data:`NO_LABEL`. Landmark rows are all
        :data:`NO_LABEL` (labels are defined on ``V \\ R``).
    meta_edges:
        Mapping ``(i, j) -> weight`` over landmark *positions*
        (``i < j``), the meta-graph edge set ``E_R`` with ``σ``.
    """

    landmarks: np.ndarray
    landmark_position: np.ndarray
    label_matrix: np.ndarray
    meta_edges: Dict[Tuple[int, int], int]

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def num_vertices(self) -> int:
        return len(self.landmark_position)

    def is_landmark(self, v: int) -> bool:
        return self.landmark_position[v] >= 0

    def label_entries(self, v: int) -> List[Tuple[int, int]]:
        """Label of ``v`` as ``[(landmark_vertex, distance), ...]``.

        Mirrors the per-vertex label sets of Definition 4.2; mostly for
        tests and debugging (hot paths use the matrix directly).
        """
        row = self.label_matrix[v]
        present = np.nonzero(row != NO_LABEL)[0]
        return [(int(self.landmarks[i]), int(row[i])) for i in present]

    def label_rows_float(self, vertices) -> np.ndarray:
        """Label rows of ``vertices`` as float64, ``inf`` for absent.

        One fancy-index gather over the dense matrix; the float form
        is what the sketch broadcast and the batched distance kernel
        compute on (``inf`` composes under ``+``/``min`` without
        sentinel bookkeeping).
        """
        rows = self.label_matrix[np.asarray(vertices, dtype=np.int64)]
        out = rows.astype(np.float64)
        out[rows == NO_LABEL] = np.inf
        return out

    def size_entries(self) -> int:
        """Number of materialized label entries (size(L) of §2)."""
        return int(np.count_nonzero(self.label_matrix != NO_LABEL))

    def paper_size_bytes(self) -> int:
        """Paper cost model: ``|R| * 8`` bits = ``|R|`` bytes per vertex."""
        return self.num_vertices * self.num_landmarks


def label_bfs(graph: Graph, root: int, is_landmark: np.ndarray,
              label_column: np.ndarray) -> List[Tuple[int, int]]:
    """One labelled BFS from landmark ``root`` (Algorithm 2 body).

    Fills ``label_column`` (uint8, length ``|V|``) in place with the
    distances of vertices that receive the label ``(root, .)``, and
    returns the discovered meta edges as ``[(landmark_vertex, weight)]``.

    The two frontiers are expanded level-synchronously with the
    ``Q_L``-before-``Q_N`` order of Algorithm 2 (lines 8-21): a vertex
    reachable at the same depth from both queues is labelled, because
    some shortest path to it avoids other landmarks.
    """
    indptr, indices = graph.indptr, graph.indices
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[root] = True
    frontier_labelled = np.array([root], dtype=np.int32)
    frontier_silent = np.empty(0, dtype=np.int32)
    meta_edges: List[Tuple[int, int]] = []
    depth = 0

    while len(frontier_labelled) or len(frontier_silent):
        depth += 1
        if depth > MAX_LABEL_DISTANCE:
            raise IndexBuildError(
                f"BFS from landmark {root} exceeded the uint8 label "
                f"distance limit ({MAX_LABEL_DISTANCE}); the paper's "
                f"8-bit-per-label cost model assumes small-diameter graphs"
            )
        # Lines 8-17: expand the labelled queue first. Anything fresh
        # it reaches has a shortest path from `root` avoiding other
        # landmarks (through labelled vertices only).
        neighbors = expand_frontier(indptr, indices, frontier_labelled)
        fresh = neighbors[~visited[neighbors]]
        fresh = np.unique(fresh)
        visited[fresh] = True
        landmark_hits = fresh[is_landmark[fresh]]
        labelled_next = fresh[~is_landmark[fresh]]
        label_column[labelled_next] = depth
        for hit in landmark_hits:
            meta_edges.append((int(hit), depth))
        # Lines 18-21: expand the silent queue. Fresh vertices here are
        # reachable only through other landmarks — traversed, no label.
        neighbors = expand_frontier(indptr, indices, frontier_silent)
        silent_fresh = neighbors[~visited[neighbors]]
        silent_fresh = np.unique(silent_fresh)
        visited[silent_fresh] = True
        frontier_labelled = labelled_next
        # Landmarks always continue silently, as do silent discoveries.
        frontier_silent = np.concatenate((landmark_hits, silent_fresh))
    return meta_edges


def build_labelling(graph: Graph, landmarks: np.ndarray) -> PathLabelling:
    """Sequential labelling construction (the paper's QbS variant).

    Runs :func:`label_bfs` for every landmark in order; because the
    scheme is deterministic w.r.t. the landmark *set* (Lemma 5.2), the
    order only affects column layout, not content.
    """
    landmarks = np.asarray(landmarks, dtype=np.int32)
    n = graph.num_vertices
    if len(landmarks) == 0:
        raise IndexBuildError("landmark set must be non-empty")
    if len(np.unique(landmarks)) != len(landmarks):
        raise IndexBuildError("landmark set contains duplicates")
    if len(landmarks) and (landmarks.min() < 0 or landmarks.max() >= n):
        raise IndexBuildError("landmark id out of range")

    position = np.full(n, -1, dtype=np.int32)
    position[landmarks] = np.arange(len(landmarks), dtype=np.int32)
    is_landmark = position >= 0

    label_matrix = np.full((n, len(landmarks)), NO_LABEL, dtype=np.uint8)
    meta: Dict[Tuple[int, int], int] = {}
    root_seconds = get_registry().histogram(
        "build_root_bfs_seconds",
        help="Wall time of one labelled BFS from a landmark root.")
    with span("build.root_bfs_loop", landmarks=len(landmarks)):
        per_root = np.empty(len(landmarks), dtype=np.float64)
        for i, root in enumerate(landmarks):
            with Stopwatch() as sw:
                hits = label_bfs(graph, int(root), is_landmark,
                                 label_matrix[:, i])
                _merge_meta_edges(meta, position, int(root), hits)
            per_root[i] = sw.elapsed
        root_seconds.observe_many(per_root)
    return PathLabelling(
        landmarks=landmarks,
        landmark_position=position,
        label_matrix=label_matrix,
        meta_edges=meta,
    )


def _merge_meta_edges(meta: Dict[Tuple[int, int], int],
                      position: np.ndarray, root: int,
                      hits: List[Tuple[int, int]]) -> None:
    """Fold the meta edges found by one BFS into the shared dict.

    Each meta edge is discovered from both endpoints; the weights must
    agree (both are the exact graph distance) — a mismatch would mean
    the BFS is broken, so it is asserted.
    """
    root_pos = int(position[root])
    for other_vertex, weight in hits:
        other_pos = int(position[other_vertex])
        key = (min(root_pos, other_pos), max(root_pos, other_pos))
        existing = meta.get(key)
        if existing is not None and existing != weight:
            raise IndexBuildError(
                f"inconsistent meta edge weight for landmarks {key}: "
                f"{existing} vs {weight}"
            )
        meta[key] = weight
