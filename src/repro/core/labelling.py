"""Labelling-scheme construction (Algorithm 2 of the paper).

For each landmark ``r`` a single BFS partitions discovered vertices
into two queues:

* ``Q_L`` — vertices reached by at least one shortest path from ``r``
  that passes through **no other landmark**; these receive the label
  ``(r, depth)``;
* ``Q_N`` — vertices whose every shortest path from ``r`` crosses some
  other landmark first; they are traversed (to block re-discovery) but
  not labelled.

Landmarks discovered from the ``Q_L`` side become meta-graph edges with
weight equal to their exact distance from ``r`` (Definition 4.1). The
construction is deterministic for a fixed landmark set (Lemma 5.2),
which is what makes the thread-parallel builder in
:mod:`repro.core.parallel` safe.

The result is stored the way the paper accounts for it: a dense
``|V| x |R|`` uint8 matrix (``|R| * 8`` bits per vertex, §6.1), with
:data:`~repro._util.NO_LABEL` marking absent entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .._util import NO_LABEL, Stopwatch
from ..errors import IndexBuildError
from ..graph.csr import Graph
from ..obs import get_registry, span
from .build_kernels import BATCH_BITS, _expand_bits, qbs_batch_levels

__all__ = ["PathLabelling", "build_labelling", "label_bfs"]

#: Largest distance representable in a uint8 label (255 is the sentinel).
MAX_LABEL_DISTANCE = 254


@dataclass
class PathLabelling:
    """The path labelling ``L`` plus raw meta-graph edges.

    Attributes
    ----------
    landmarks:
        int32 array of landmark vertex ids; column ``i`` of
        ``label_matrix`` belongs to ``landmarks[i]``.
    landmark_position:
        int32 array of length ``|V|``; position of each landmark in
        ``landmarks`` (or -1 for non-landmarks).
    label_matrix:
        ``(|V|, |R|)`` uint8 array; ``label_matrix[v, i]`` is
        ``d_G(v, landmarks[i])`` when a landmark-avoiding shortest path
        exists, else :data:`NO_LABEL`. Landmark rows are all
        :data:`NO_LABEL` (labels are defined on ``V \\ R``).
    meta_edges:
        Mapping ``(i, j) -> weight`` over landmark *positions*
        (``i < j``), the meta-graph edge set ``E_R`` with ``σ``.
    """

    landmarks: np.ndarray
    landmark_position: np.ndarray
    label_matrix: np.ndarray
    meta_edges: Dict[Tuple[int, int], int]

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def num_vertices(self) -> int:
        return len(self.landmark_position)

    def is_landmark(self, v: int) -> bool:
        return self.landmark_position[v] >= 0

    def label_entries(self, v: int) -> List[Tuple[int, int]]:
        """Label of ``v`` as ``[(landmark_vertex, distance), ...]``.

        Mirrors the per-vertex label sets of Definition 4.2; mostly for
        tests and debugging (hot paths use the matrix directly).
        """
        row = self.label_matrix[v]
        present = np.nonzero(row != NO_LABEL)[0]
        return [(int(self.landmarks[i]), int(row[i])) for i in present]

    def label_rows_float(self, vertices) -> np.ndarray:
        """Label rows of ``vertices`` as float64, ``inf`` for absent.

        One fancy-index gather over the dense matrix; the float form
        is what the sketch broadcast and the batched distance kernel
        compute on (``inf`` composes under ``+``/``min`` without
        sentinel bookkeeping).
        """
        rows = self.label_matrix[np.asarray(vertices, dtype=np.int64)]
        out = rows.astype(np.float64)
        out[rows == NO_LABEL] = np.inf
        return out

    def size_entries(self) -> int:
        """Number of materialized label entries (size(L) of §2)."""
        return int(np.count_nonzero(self.label_matrix != NO_LABEL))

    def paper_size_bytes(self) -> int:
        """Paper cost model: ``|R| * 8`` bits = ``|R|`` bytes per vertex."""
        return self.num_vertices * self.num_landmarks


def _depth_limit_error(roots) -> str:
    head = ", ".join(str(int(r)) for r in np.asarray(roots)[:3])
    return (f"BFS from landmark(s) {head} exceeded the uint8 label "
            f"distance limit ({MAX_LABEL_DISTANCE}); the paper's "
            f"8-bit-per-label cost model assumes small-diameter graphs")


def label_bfs(graph: Graph, root: int, is_landmark: np.ndarray,
              label_column: np.ndarray) -> List[Tuple[int, int]]:
    """One labelled BFS from landmark ``root`` (Algorithm 2 body).

    Fills ``label_column`` (uint8, length ``|V|``) in place with the
    distances of vertices that receive the label ``(root, .)``, and
    returns the discovered meta edges as ``[(landmark_vertex, weight)]``.

    The ``Q_L``/``Q_N`` split of Algorithm 2 (lines 8-21) is exactly
    the shared prune rule of :mod:`repro.core.build_kernels`: a vertex
    is labelled iff its BFS distance restricted to landmark-free
    interiors equals its true distance, so this is a one-root
    instantiation of the same lockstep kernel the batched builder and
    PPL use — the two constructions can no longer drift.
    """
    degrees = np.diff(graph.indptr).astype(np.int64)
    roots = np.array([root], dtype=np.int64)
    meta_edges: List[Tuple[int, int]] = []
    for depth, vertices, _bits in qbs_batch_levels(
            graph.indptr, graph.indices, degrees, roots, is_landmark,
            max_depth=MAX_LABEL_DISTANCE,
            max_depth_error=_depth_limit_error(roots)):
        if depth == 0:
            continue
        hits = vertices[is_landmark[vertices]]
        label_column[vertices[~is_landmark[vertices]]] = depth
        for hit in hits:
            meta_edges.append((int(hit), depth))
    return meta_edges


def build_labelling(graph: Graph, landmarks: np.ndarray) -> PathLabelling:
    """Sequential labelling construction (the paper's QbS variant).

    Sweeps the landmarks 64 at a time through the bit-parallel lockstep
    kernel (one uint64 lane per root); because the scheme is
    deterministic w.r.t. the landmark *set* (Lemma 5.2), the order only
    affects column layout, not content — which is also why the batched
    sweep and the per-root :func:`label_bfs` (same kernel, one lane)
    produce identical matrices.
    """
    landmarks = np.asarray(landmarks, dtype=np.int32)
    n = graph.num_vertices
    if len(landmarks) == 0:
        raise IndexBuildError("landmark set must be non-empty")
    if len(np.unique(landmarks)) != len(landmarks):
        raise IndexBuildError("landmark set contains duplicates")
    if len(landmarks) and (landmarks.min() < 0 or landmarks.max() >= n):
        raise IndexBuildError("landmark id out of range")

    position = np.full(n, -1, dtype=np.int32)
    position[landmarks] = np.arange(len(landmarks), dtype=np.int32)
    is_landmark = position >= 0

    label_matrix = np.full((n, len(landmarks)), NO_LABEL, dtype=np.uint8)
    meta: Dict[Tuple[int, int], int] = {}
    registry = get_registry()
    root_seconds = registry.histogram(
        "build_root_bfs_seconds",
        help="Wall time of one labelled BFS from a landmark root.")
    roots_counter = registry.counter(
        "build_roots_processed_total",
        help="Landmark roots swept by the construction kernels.")
    indptr, indices = graph.indptr, graph.indices
    degrees = np.diff(indptr).astype(np.int64)
    with span("build.root_bfs_loop", landmarks=len(landmarks),
              batch_bits=BATCH_BITS):
        for start in range(0, len(landmarks), BATCH_BITS):
            chunk = landmarks[start:start + BATCH_BITS]
            hits_by_slot: List[List[Tuple[int, int]]] = [
                [] for _ in range(len(chunk))]
            with Stopwatch() as sw:
                for depth, vertices, bits in qbs_batch_levels(
                        indptr, indices, degrees,
                        chunk.astype(np.int64), is_landmark,
                        max_depth=MAX_LABEL_DISTANCE,
                        max_depth_error=_depth_limit_error(chunk)):
                    if depth == 0:
                        continue
                    rows, cols = _expand_bits(bits)
                    labelled = vertices[rows]
                    hit_mask = is_landmark[labelled]
                    label_matrix[labelled[~hit_mask],
                                 start + cols[~hit_mask]] = depth
                    for v, slot in zip(labelled[hit_mask].tolist(),
                                       cols[hit_mask].tolist()):
                        hits_by_slot[slot].append((v, depth))
            for slot, root in enumerate(chunk):
                _merge_meta_edges(meta, position, int(root),
                                  hits_by_slot[slot])
            roots_counter.inc(len(chunk))
            # One lockstep pass serves the whole batch; attribute its
            # wall time evenly so the per-root histogram stays live.
            root_seconds.observe_many(
                np.full(len(chunk), sw.elapsed / len(chunk)))
    return PathLabelling(
        landmarks=landmarks,
        landmark_position=position,
        label_matrix=label_matrix,
        meta_edges=meta,
    )


def _merge_meta_edges(meta: Dict[Tuple[int, int], int],
                      position: np.ndarray, root: int,
                      hits: List[Tuple[int, int]]) -> None:
    """Fold the meta edges found by one BFS into the shared dict.

    Each meta edge is discovered from both endpoints; the weights must
    agree (both are the exact graph distance) — a mismatch would mean
    the BFS is broken, so it is asserted.
    """
    root_pos = int(position[root])
    for other_vertex, weight in hits:
        other_pos = int(position[other_vertex])
        key = (min(root_pos, other_pos), max(root_pos, other_pos))
        existing = meta.get(key)
        if existing is not None and existing != weight:
            raise IndexBuildError(
                f"inconsistent meta edge weight for landmarks {key}: "
                f"{existing} vs {weight}"
            )
        meta[key] = weight
