"""Guided searching (Algorithm 4 of the paper).

Answering ``SPG(u, v)`` after sketching has three stages:

1. **Bidirectional search** on the sparsified graph ``G⁻ = G[V \\ R]``,
   alternating a forward (``u``) and backward (``v``) level expansion.
   The sketch contributes the upper bound ``d_top`` (stop once
   ``d_u + d_v`` reaches it) and the per-side budgets ``d*`` (Eq. 4)
   that bias which side to grow; ties fall back to the smaller visited
   set, the classic optimized bi-BFS rule.
2. **Reverse search** — when the frontiers met, walk the two depth
   arrays back from the minimal meeting set, collecting every edge of
   ``G⁻_uv`` (shortest paths that avoid landmarks entirely).
3. **Recover search** — when landmark routes tie the distance,
   reconstruct ``G^L_uv`` (shortest paths through landmarks) from the
   ``Z`` seed pairs (line 19-23), the label columns, and the
   precomputed inter-landmark SPGs ``Δ``.

The final answer is the union prescribed by Eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from .._util import UNREACHED
from ..graph.csr import Graph
from .labelling import PathLabelling
from .metagraph import MetaGraph
from .sketch import Sketch
from .spg import ShortestPathGraph

__all__ = ["SearchStats", "GuidedSearcher", "bidirectional_spg"]

Edge = Tuple[int, int]


def _norm(a: int, b: int) -> Edge:
    return (a, b) if a <= b else (b, a)


@dataclass
class SearchStats:
    """Instrumentation for the §6.5 traversal-savings experiments."""

    edges_traversed: int = 0
    levels_u: int = 0
    levels_v: int = 0
    met: bool = False
    used_reverse: bool = False
    used_recover: bool = False
    d_minus: Optional[int] = None
    d_top: Optional[int] = None


@dataclass
class _BfsSide:
    """State of one direction of the bidirectional search."""

    source: int
    depth: np.ndarray
    levels: List[np.ndarray] = field(default_factory=list)
    frontier: np.ndarray = field(default=None)
    current_depth: int = 0
    visited_count: int = 1

    @classmethod
    def start(cls, source: int, num_vertices: int) -> "_BfsSide":
        depth = np.full(num_vertices, UNREACHED, dtype=np.int32)
        depth[source] = 0
        frontier = np.array([source], dtype=np.int32)
        side = cls(source=source, depth=depth, frontier=frontier)
        side.levels.append(frontier)
        return side


class GuidedSearcher:
    """Reusable query executor bound to one built QbS index."""

    def __init__(self, graph: Graph, sparsified: Graph,
                 labelling: PathLabelling, meta: MetaGraph) -> None:
        self._graph = graph
        self._sparsified = sparsified
        self._labelling = labelling
        self._meta = meta

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, sketch: Sketch, stats: Optional[SearchStats] = None,
            use_budgets: bool = True) -> ShortestPathGraph:
        """Execute Algorithm 4 for a prepared sketch.

        ``use_budgets=False`` disables the Eq. 4 side-selection hints
        (the ablation for §6.5 gain source (2)); the ``d_top`` bound and
        correctness are unaffected.
        """
        u, v = sketch.u, sketch.v
        stats = stats if stats is not None else SearchStats()
        stats.d_top = sketch.d_top

        side_u = _BfsSide.start(u, self._graph.num_vertices)
        side_v = _BfsSide.start(v, self._graph.num_vertices)
        d_minus, meeting = self._bidirectional(sketch, side_u, side_v, stats,
                                               use_budgets=use_budgets)
        stats.d_minus = d_minus
        stats.met = meeting is not None

        candidates = [d for d in (d_minus, sketch.d_top) if d is not None]
        if not candidates:
            return ShortestPathGraph.empty(u, v)
        distance = min(candidates)

        edges: Set[Edge] = set()
        if d_minus is not None and d_minus == distance:
            stats.used_reverse = True
            assert meeting is not None
            edges |= self._reverse_search(meeting, side_u)
            edges |= self._reverse_search(meeting, side_v)
        if sketch.d_top is not None and sketch.d_top == distance:
            stats.used_recover = True
            edges |= self._recover_search(sketch, side_u, side_v)
        return ShortestPathGraph(u, v, distance, edges)

    def distance_only(self, sketch: Sketch,
                      stats: Optional[SearchStats] = None) -> Optional[int]:
        """Exact distance without materializing the SPG.

        Runs only the bounded bidirectional stage and combines it with
        the sketch bound (``d = min(d_minus, d_top)``, §4.3). Cheaper
        than :meth:`run` because the reverse and recover stages are
        skipped entirely.
        """
        stats = stats if stats is not None else SearchStats()
        stats.d_top = sketch.d_top
        side_u = _BfsSide.start(sketch.u, self._graph.num_vertices)
        side_v = _BfsSide.start(sketch.v, self._graph.num_vertices)
        d_minus, _ = self._bidirectional(sketch, side_u, side_v, stats)
        stats.d_minus = d_minus
        candidates = [d for d in (d_minus, sketch.d_top) if d is not None]
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # Stage 1: bounded bidirectional BFS on G-minus
    # ------------------------------------------------------------------

    def _bidirectional(self, sketch: Sketch, side_u: _BfsSide,
                       side_v: _BfsSide, stats: SearchStats,
                       use_budgets: bool = True):
        """Alternating level expansion (Algorithm 4 lines 6-15).

        Returns ``(d_minus, meeting)`` — the exact ``d_{G⁻}(u, v)`` and
        the minimal meeting vertex set, or ``(None, None)`` when the
        endpoints do not connect within the ``d_top`` bound.
        """
        d_top = sketch.d_top
        indptr = self._sparsified.indptr
        indices = self._sparsified.indices
        while d_top is None or side_u.current_depth + side_v.current_depth \
                < d_top:
            side = self._pick_side(sketch, side_u, side_v, use_budgets)
            if side is None:
                return None, None
            other = side_v if side is side_u else side_u
            fresh = self._expand(indptr, indices, side, stats)
            hits = fresh[other.depth[fresh] != UNREACHED]
            if len(hits):
                sums = side.current_depth + other.depth[hits]
                d_minus = int(sums.min())
                meeting = hits[sums == d_minus]
                return d_minus, meeting
            if len(fresh) == 0:
                # The side's whole G⁻ component is explored without a
                # meeting, so the pair is disconnected in G⁻.
                return None, None
        return None, None

    def _pick_side(self, sketch: Sketch, side_u: _BfsSide,
                   side_v: _BfsSide,
                   use_budgets: bool = True) -> Optional[_BfsSide]:
        """pick_search of Algorithm 4 line 7.

        Prefer the side whose sketch budget ``d*`` is not yet met; break
        ties (both or neither under budget) with the smaller visited
        set. A side with an exhausted frontier can never progress, so
        the other is chosen; both exhausted means ``G⁻`` disconnects
        the pair.
        """
        u_alive = len(side_u.frontier) > 0
        v_alive = len(side_v.frontier) > 0
        if not u_alive and not v_alive:
            return None
        if not u_alive:
            return side_v
        if not v_alive:
            return side_u
        if use_budgets:
            u_under = side_u.current_depth < sketch.budget_u
            v_under = side_v.current_depth < sketch.budget_v
            if u_under != v_under:
                return side_u if u_under else side_v
        if side_u.visited_count <= side_v.visited_count:
            return side_u
        return side_v

    @staticmethod
    def _expand(indptr: np.ndarray, indices: np.ndarray, side: _BfsSide,
                stats: SearchStats) -> np.ndarray:
        """Grow ``side`` one BFS level; returns the fresh vertex array."""
        from ..graph.traversal import expand_frontier

        neighbors = expand_frontier(indptr, indices, side.frontier)
        stats.edges_traversed += len(neighbors)
        fresh = neighbors[side.depth[neighbors] == UNREACHED]
        fresh = np.unique(fresh)
        side.current_depth += 1
        side.depth[fresh] = side.current_depth
        side.levels.append(fresh)
        side.frontier = fresh
        side.visited_count += len(fresh)
        return fresh

    # ------------------------------------------------------------------
    # Stage 2: reverse search (lines 16-17)
    # ------------------------------------------------------------------

    def _reverse_search(self, seeds: np.ndarray,
                        side: _BfsSide) -> Set[Edge]:
        """Collect all ``G⁻`` shortest-path edges from ``seeds`` back to
        the side's source, descending its exact depth array."""
        return _descend_depths(self._sparsified, side.depth, seeds)

    # ------------------------------------------------------------------
    # Stage 3: recover search (lines 18-24)
    # ------------------------------------------------------------------

    def _recover_search(self, sketch: Sketch, side_u: _BfsSide,
                        side_v: _BfsSide) -> Set[Edge]:
        """Reconstruct ``G^L_uv``: shortest paths through landmarks."""
        edges: Set[Edge] = set()
        label_matrix = self._labelling.label_matrix
        for side, sketch_edges in ((side_u, sketch.side_u),
                                   (side_v, sketch.side_v)):
            # Z seeds (lines 19-23): per minimal landmark route, the
            # explored vertices nearest to the landmark.
            per_landmark: Dict[int, Dict[int, Set[int]]] = {}
            for r_pos, sigma in sketch_edges.items():
                d_m = min(sigma - 1, side.current_depth)
                level = side.levels[d_m]
                remaining = sigma - d_m
                column = label_matrix[:, r_pos]
                seeds = level[column[level] == remaining]
                if len(seeds) == 0:
                    continue
                by_delta = per_landmark.setdefault(r_pos, {})
                by_delta.setdefault(remaining, set()).update(
                    int(w) for w in seeds
                )
                # Segment t .. w via the searched depths.
                edges |= _descend_depths(self._sparsified, side.depth,
                                         seeds)
            # Segment w .. r via the label column.
            for r_pos, by_delta in per_landmark.items():
                edges |= self._descend_labels(r_pos, by_delta)
        # Landmark-to-landmark structure: expand every meta edge on a
        # shortest meta path of each minimizing pair with its Δ SPG.
        expanded: Set[Edge] = set()
        for r, r_prime in set(sketch.meta_pairs):
            for a, b in self._meta.meta_spg_edges(r, r_prime):
                key = (min(a, b), max(a, b))
                if key in expanded:
                    continue
                expanded.add(key)
                edges |= self._expand_delta(key)
        return edges

    def _expand_delta(self, key: Tuple[int, int]) -> FrozenSet[Edge]:
        """Δ edges for a meta edge — precomputed, or rebuilt on demand
        when the index was built with ``precompute_delta=False``."""
        delta = self._meta.delta.get(key)
        if delta is None:
            from .metagraph import _landmark_pair_spg

            delta = _landmark_pair_spg(
                self._graph, self._labelling, key[0], key[1],
                self._meta.edges[key],
            )
        return delta

    def _descend_labels(self, r_pos: int,
                        by_delta: Dict[int, Set[int]]) -> Set[Edge]:
        """Walk label column ``r_pos`` down to the landmark itself.

        ``by_delta`` maps label distance -> seed vertices at that
        distance; the descent merges levels so shared sub-paths are
        traversed once.
        """
        landmark_vertex = int(self._labelling.landmarks[r_pos])
        column = self._labelling.label_matrix[:, r_pos]
        sparsified = self._sparsified
        edges: Set[Edge] = set()
        if not by_delta:
            return edges
        top = max(by_delta)
        levels: List[Set[int]] = [set() for _ in range(top + 1)]
        for delta, seeds in by_delta.items():
            levels[delta] |= seeds
        for delta in range(top, 0, -1):
            for x in levels[delta]:
                if delta == 1:
                    # d(x, landmark) == 1: the direct edge exists in G.
                    edges.add(_norm(x, landmark_vertex))
                    continue
                for y in sparsified.neighbors(x):
                    y = int(y)
                    if column[y] == delta - 1:
                        edges.add(_norm(x, y))
                        levels[delta - 1].add(y)
        return edges


def _descend_depths(sparsified: Graph, depth: np.ndarray,
                    seeds) -> Set[Edge]:
    """All shortest-path edges from ``seeds`` back to depth 0.

    For each vertex ``x`` at depth ``d`` every neighbour at exact depth
    ``d - 1`` is a BFS parent, and each such edge lies on a shortest
    path from the source to ``x``.
    """
    edges: Set[Edge] = set()
    buckets: Dict[int, Set[int]] = {}
    for x in seeds:
        x = int(x)
        d = int(depth[x])
        if d > 0:
            buckets.setdefault(d, set()).add(x)
    if not buckets:
        return edges
    # Descend level by level; vertices discovered at level d-1 are
    # processed on the next iteration even if no seed started there.
    for d in range(max(buckets), 0, -1):
        for x in buckets.get(d, ()):
            for y in sparsified.neighbors(x):
                y = int(y)
                if depth[y] == d - 1:
                    edges.add(_norm(x, y))
                    if d - 1 > 0:
                        buckets.setdefault(d - 1, set()).add(y)
    return edges


def bidirectional_spg(graph: Graph, u: int, v: int,
                      stats: Optional[SearchStats] = None
                      ) -> ShortestPathGraph:
    """Plain bidirectional-BFS SPG on the *full* graph.

    This is the Bi-BFS baseline of Table 2 (and the fallback for
    landmark endpoints): the same alternating search and reverse
    machinery as the guided version, with no sketch bound, no budgets
    and no sparsification.
    """
    graph._check_vertex(u)
    graph._check_vertex(v)
    if u == v:
        return ShortestPathGraph.trivial(u)
    stats = stats if stats is not None else SearchStats()
    from ..graph.traversal import expand_frontier

    n = graph.num_vertices
    side_u = _BfsSide.start(u, n)
    side_v = _BfsSide.start(v, n)
    indptr, indices = graph.indptr, graph.indices
    while True:
        if len(side_u.frontier) == 0 and len(side_v.frontier) == 0:
            return ShortestPathGraph.empty(u, v)
        if len(side_u.frontier) == 0:
            side = side_v
        elif len(side_v.frontier) == 0:
            side = side_u
        elif side_u.visited_count <= side_v.visited_count:
            side = side_u
        else:
            side = side_v
        other = side_v if side is side_u else side_u
        fresh = GuidedSearcher._expand(indptr, indices, side, stats)
        if len(fresh) == 0:
            # Component exhausted without meeting: disconnected pair.
            return ShortestPathGraph.empty(u, v)
        hits = fresh[other.depth[fresh] != UNREACHED]
        if len(hits):
            sums = side.current_depth + other.depth[hits]
            distance = int(sums.min())
            meeting = hits[sums == distance]
            edges = _descend_depths(graph, side_u.depth, meeting)
            edges |= _descend_depths(graph, side_v.depth, meeting)
            stats.met = True
            stats.d_minus = distance
            return ShortestPathGraph(u, v, distance, edges)
