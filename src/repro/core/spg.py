"""The query answer type: a shortest path graph (SPG).

Definition 2.2 of the paper: for vertices ``u`` and ``v`` of ``G``, the
SPG ``G_uv`` is the subgraph whose edge set is the union of the edges
of *all* shortest ``u``–``v`` paths (and whose vertex set is the union
of their vertices). :class:`ShortestPathGraph` is the value returned by
every query method in this library — QbS and all baselines — so results
are directly comparable.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..errors import QueryError

__all__ = ["ShortestPathGraph"]

Edge = Tuple[int, int]


def _normalize(u: int, v: int) -> Edge:
    return (u, v) if u <= v else (v, u)


class ShortestPathGraph:
    """Immutable shortest path graph between ``source`` and ``target``.

    ``distance`` is ``None`` when the endpoints are disconnected (the
    edge set is then empty); ``0`` when ``source == target``.
    """

    __slots__ = ("source", "target", "distance", "_edges", "_adjacency")

    def __init__(self, source: int, target: int,
                 distance: Optional[int],
                 edges) -> None:
        self.source = int(source)
        self.target = int(target)
        self.distance = None if distance is None else int(distance)
        normalized = frozenset(_normalize(int(a), int(b)) for a, b in edges)
        if self.distance in (None, 0) and normalized:
            raise QueryError(
                "an SPG with no path (or a trivial one) cannot have edges"
            )
        self._edges: FrozenSet[Edge] = normalized
        self._adjacency: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, source: int, target: int) -> "ShortestPathGraph":
        """SPG for a disconnected pair."""
        return cls(source, target, None, ())

    @classmethod
    def trivial(cls, vertex: int) -> "ShortestPathGraph":
        """SPG for ``u == v`` (a single vertex, no edges)."""
        return cls(vertex, vertex, 0, ())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def edges(self) -> FrozenSet[Edge]:
        """Frozen set of undirected edges, normalized ``(min, max)``."""
        return self._edges

    @property
    def vertices(self) -> Set[int]:
        """All vertices on at least one shortest path (endpoints always)."""
        result = {self.source, self.target}
        for a, b in self._edges:
            result.add(a)
            result.add(b)
        return result

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def is_connected_pair(self) -> bool:
        return self.distance is not None

    def _adj(self) -> Dict[int, List[int]]:
        if self._adjacency is None:
            adjacency: Dict[int, List[int]] = defaultdict(list)
            for a, b in self._edges:
                adjacency[a].append(b)
                adjacency[b].append(a)
            for neighbours in adjacency.values():
                neighbours.sort()
            self._adjacency = dict(adjacency)
        return self._adjacency

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def levels(self) -> Dict[int, int]:
        """BFS levels from ``source`` within the SPG.

        In a valid SPG every vertex sits at its exact ``d(source, x)``
        level, and every edge joins consecutive levels; the validation
        helpers rely on this.
        """
        if not self._edges:
            return {self.source: 0}
        level = {self.source: 0}
        queue = deque([self.source])
        adjacency = self._adj()
        while queue:
            x = queue.popleft()
            for y in adjacency.get(x, ()):
                if y not in level:
                    level[y] = level[x] + 1
                    queue.append(y)
        return level

    def dag_edges(self) -> Iterator[Tuple[int, int]]:
        """Edges oriented from ``source`` towards ``target``."""
        level = self.levels()
        for a, b in self._edges:
            if level[a] + 1 == level[b]:
                yield a, b
            else:
                yield b, a

    def count_paths(self) -> int:
        """Number of distinct shortest paths (exact, DP over the DAG).

        This is the quantity Figure 1 of the paper motivates: pairs at
        equal distance are distinguished by *how many* shortest paths
        join them.
        """
        if self.distance is None:
            return 0
        if self.distance == 0:
            return 1
        level = self.levels()
        ways = defaultdict(int)
        ways[self.source] = 1
        order = sorted(level, key=level.get)
        adjacency = self._adj()
        for x in order:
            for y in adjacency.get(x, ()):
                if level[y] == level[x] + 1:
                    ways[y] += ways[x]
        return ways[self.target]

    def iter_paths(self, limit: Optional[int] = None):
        """Enumerate shortest paths as vertex tuples (DFS over the DAG).

        ``limit`` caps the enumeration; SPGs can encode exponentially
        many paths in linear space, which is exactly why the paper
        refuses to enumerate.
        """
        if self.distance is None:
            return
        if self.distance == 0:
            yield (self.source,)
            return
        level = self.levels()
        adjacency = self._adj()
        produced = 0
        stack: List[Tuple[int, Tuple[int, ...]]] = [(self.source,
                                                     (self.source,))]
        while stack:
            x, path = stack.pop()
            if x == self.target:
                yield path
                produced += 1
                if limit is not None and produced >= limit:
                    return
                continue
            for y in adjacency.get(x, ()):
                if level.get(y) == level[x] + 1:
                    stack.append((y, path + (y,)))

    def edge_betweenness(self) -> Dict[Edge, int]:
        """Number of shortest paths crossing each SPG edge.

        An edge crossed by *every* shortest path is a critical link
        (Shortest Path Common Links problem from the introduction).
        """
        total = self.count_paths()
        if total == 0:
            return {}
        level = self.levels()
        adjacency = self._adj()
        forward = defaultdict(int)
        forward[self.source] = 1
        for x in sorted(level, key=level.get):
            for y in adjacency.get(x, ()):
                if level[y] == level[x] + 1:
                    forward[y] += forward[x]
        backward = defaultdict(int)
        backward[self.target] = 1
        for x in sorted(level, key=level.get, reverse=True):
            for y in adjacency.get(x, ()):
                if level[y] == level[x] - 1:
                    backward[y] += backward[x]
        result: Dict[Edge, int] = {}
        for a, b in self._edges:
            lo, hi = (a, b) if level[a] < level[b] else (b, a)
            result[_normalize(a, b)] = forward[lo] * backward[hi]
        return result

    def critical_edges(self) -> Set[Edge]:
        """Edges lying on every shortest path (common links)."""
        total = self.count_paths()
        return {edge for edge, paths in self.edge_betweenness().items()
                if paths == total and total > 0}

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShortestPathGraph):
            return NotImplemented
        same_pair = ({self.source, self.target}
                     == {other.source, other.target})
        return (same_pair and self.distance == other.distance
                and self._edges == other._edges)

    def __hash__(self) -> int:
        return hash((frozenset((self.source, self.target)),
                     self.distance, self._edges))

    def __repr__(self) -> str:
        return (f"ShortestPathGraph({self.source} ~ {self.target}, "
                f"distance={self.distance}, edges={len(self._edges)})")
