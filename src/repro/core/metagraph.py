"""Meta-graph ``M = (R, E_R, σ)`` and inter-landmark path material.

Definition 4.1: landmarks are joined by an edge iff some shortest path
between them avoids all other landmarks; the weight is their exact
distance. Because every landmark-to-landmark shortest path decomposes
at its landmark visits into such edges, shortest-path distances *on the
meta-graph* equal distances in ``G`` — which is what makes the sketch
upper bound (Eq. 3) exact for landmark-passing paths.

This module also precomputes ``Δ``: for every meta edge ``(a, b)``, the
shortest path graph of the landmark-avoiding ``a``–``b`` paths in
``G``. §5.2/§6.5 of the paper precompute these so queries never search
between high-degree landmarks; Table 3 reports their size as
``size(Δ)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path as _sp_shortest_path

from ..graph.csr import Graph
from .labelling import PathLabelling

__all__ = ["MetaGraph", "build_meta_graph"]

Edge = Tuple[int, int]


@dataclass
class MetaGraph:
    """Meta-graph over landmark *positions* ``0..|R|-1``.

    Attributes
    ----------
    landmarks:
        Landmark vertex ids (positions index into this).
    edges:
        ``(i, j) -> weight`` with ``i < j`` (σ of Definition 4.1).
    dist:
        ``(|R|, |R|)`` float64 matrix of meta-graph distances ``d_M``
        (``inf`` when disconnected; 0 on the diagonal).
    delta:
        ``(i, j) -> frozenset of G edges``: the precomputed SPG of
        landmark-avoiding shortest paths for each meta edge (Δ).
    """

    landmarks: np.ndarray
    edges: Dict[Edge, int]
    dist: np.ndarray
    delta: Dict[Edge, FrozenSet[Edge]] = field(default_factory=dict)
    _edge_arrays: Optional[tuple] = field(default=None, repr=False)
    _spg_cache: Dict[Edge, List[Edge]] = field(default_factory=dict,
                                               repr=False)

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    def weight(self, i: int, j: int) -> int:
        """σ(i, j) for an existing meta edge."""
        return self.edges[(min(i, j), max(i, j))]

    def _arrays(self):
        """Meta edges as parallel numpy arrays (lazily materialized)."""
        if self._edge_arrays is None:
            if self.edges:
                keys = sorted(self.edges)
                a = np.fromiter((k[0] for k in keys), dtype=np.int64,
                                count=len(keys))
                b = np.fromiter((k[1] for k in keys), dtype=np.int64,
                                count=len(keys))
                w = np.fromiter((self.edges[k] for k in keys),
                                dtype=np.float64, count=len(keys))
            else:
                a = b = np.empty(0, dtype=np.int64)
                w = np.empty(0, dtype=np.float64)
            object.__setattr__(self, "_edge_arrays", (a, b, w))
        return self._edge_arrays

    def meta_spg_edges(self, i: int, j: int) -> List[Edge]:
        """Meta edges lying on shortest ``i``–``j`` paths *in M*.

        A meta edge ``(a, b)`` of weight ``w`` is on such a path iff
        ``d_M[i,a] + w + d_M[b,j] == d_M[i,j]`` in one orientation.
        Used by Algorithm 3 lines 10-12 to put landmark-to-landmark
        structure into the sketch. Vectorized over the edge arrays and
        memoized per landmark pair — this is the §5.2 precomputation
        that keeps sketching O(|R|^2).
        """
        if i == j:
            return []
        key = (min(i, j), max(i, j))
        cached = self._spg_cache.get(key)
        if cached is not None:
            return cached
        target = self.dist[i, j]
        if not np.isfinite(target):
            self._spg_cache[key] = []
            return []
        a, b, w = self._arrays()
        on_path = (
            (self.dist[i, a] + w + self.dist[b, j] == target)
            | (self.dist[i, b] + w + self.dist[a, j] == target)
        )
        result = [(int(x), int(y))
                  for x, y in zip(a[on_path], b[on_path])]
        self._spg_cache[key] = result
        return result

    def expand_meta_edge(self, i: int, j: int) -> FrozenSet[Edge]:
        """The Δ edge set of a meta edge (G edges, normalized)."""
        return self.delta[(min(i, j), max(i, j))]

    def delta_total_edges(self) -> int:
        """Total stored Δ edges (the size(Δ) accounting of Table 3)."""
        return sum(len(edges) for edges in self.delta.values())

    def paper_size_bytes(self) -> int:
        """Meta-graph storage under the paper's model (§6.2.2).

        Each meta edge: two 32-bit landmark ids plus an 8-bit weight.
        """
        return len(self.edges) * 9


def build_meta_graph(graph: Graph, labelling: PathLabelling,
                     precompute_delta: bool = True) -> MetaGraph:
    """Assemble the meta-graph from a built labelling.

    ``precompute_delta=False`` skips the Δ materialization — the
    ablation bench uses this to measure what §6.5 calls source of gain
    (3); queries then rebuild landmark segments on the fly.
    """
    count = labelling.num_landmarks
    dist = _meta_distances(labelling.meta_edges, count)
    meta = MetaGraph(
        landmarks=labelling.landmarks,
        edges=dict(labelling.meta_edges),
        dist=dist,
    )
    if precompute_delta:
        for (i, j), weight in sorted(meta.edges.items()):
            meta.delta[(i, j)] = _landmark_pair_spg(
                graph, labelling, i, j, weight
            )
    return meta


def _meta_distances(edges: Dict[Edge, int], count: int) -> np.ndarray:
    """All-pairs shortest distances on the weighted meta-graph."""
    if count == 0:
        return np.zeros((0, 0))
    if not edges:
        dist = np.full((count, count), np.inf)
        np.fill_diagonal(dist, 0.0)
        return dist
    rows, cols, weights = [], [], []
    for (i, j), w in edges.items():
        rows.extend((i, j))
        cols.extend((j, i))
        weights.extend((w, w))
    matrix = csr_matrix(
        (np.asarray(weights, dtype=np.float64),
         (np.asarray(rows), np.asarray(cols))),
        shape=(count, count),
    )
    # The meta-graph is tiny (|R| <= a few hundred); Dijkstra from every
    # node is effectively free next to the labelling BFSs.
    return _sp_shortest_path(matrix, method="D", directed=False)


def _landmark_pair_spg(graph: Graph, labelling: PathLabelling,
                       i: int, j: int, weight: int) -> FrozenSet[Edge]:
    """Δ(i, j): SPG edges of landmark-avoiding shortest a-b paths.

    Label-guided descent from the ``b`` side: interior vertices of such
    paths carry labels from both endpoints whose distances sum to the
    edge weight, so each step just filters neighbours on the ``a``
    label column.
    """
    a = int(labelling.landmarks[i])
    b = int(labelling.landmarks[j])
    if weight == 1:
        return frozenset({_norm(a, b)})
    col_a = labelling.label_matrix[:, i]
    col_b = labelling.label_matrix[:, j]
    is_landmark = labelling.landmark_position >= 0

    edges: Set[Edge] = set()
    # Seeds: non-landmark neighbours of b lying on an avoiding path —
    # exactly those labelled (a, weight-1) and (b, 1).
    seeds = [
        int(x) for x in graph.neighbors(b)
        if not is_landmark[x]
        and col_a[x] == weight - 1 and col_b[x] == 1
    ]
    for x in seeds:
        edges.add(_norm(x, b))
    # Descend the `a` label column: level ell connects to level ell-1.
    current: Set[int] = set(seeds)
    for level in range(weight - 1, 0, -1):
        next_level: Set[int] = set()
        for x in current:
            if level == 1:
                edges.add(_norm(x, a))
                continue
            for y in graph.neighbors(x):
                y = int(y)
                if not is_landmark[y] and col_a[y] == level - 1:
                    edges.add(_norm(x, y))
                    next_level.add(y)
        current = next_level
    return frozenset(edges)


def _norm(u: int, v: int) -> Edge:
    return (u, v) if u <= v else (v, u)
