"""Thread-parallel labelling construction (QbS-P, §5.3).

Lemma 5.2: the labelling scheme is deterministic with respect to the
landmark *set* — no landmark ordering is involved — so the per-landmark
BFSs of Algorithm 2 are independent and can run concurrently. Each
worker fills its own column of the shared label matrix (disjoint
writes) and returns its meta-edge discoveries, which are merged
afterwards exactly as in the sequential builder.

CPython threads still contend on the GIL for the Python-level parts of
the BFS, but the numpy kernels (frontier gather, masking, unique)
release it, which is where the time goes on non-trivial graphs — the
same effect, if more muted, as the paper's 6-12x QbS-P speedups.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from .._util import NO_LABEL
from ..errors import IndexBuildError
from ..graph.csr import Graph
from .labelling import PathLabelling, _merge_meta_edges, label_bfs

__all__ = ["build_labelling_parallel"]


def build_labelling_parallel(graph: Graph, landmarks: np.ndarray,
                             num_threads: Optional[int] = None
                             ) -> PathLabelling:
    """Parallel twin of :func:`repro.core.labelling.build_labelling`.

    Produces a byte-identical :class:`PathLabelling` (tests assert
    this); only wall-clock time differs.
    """
    landmarks = np.asarray(landmarks, dtype=np.int32)
    n = graph.num_vertices
    if len(landmarks) == 0:
        raise IndexBuildError("landmark set must be non-empty")
    if len(np.unique(landmarks)) != len(landmarks):
        raise IndexBuildError("landmark set contains duplicates")
    if landmarks.min() < 0 or landmarks.max() >= n:
        raise IndexBuildError("landmark id out of range")

    position = np.full(n, -1, dtype=np.int32)
    position[landmarks] = np.arange(len(landmarks), dtype=np.int32)
    is_landmark = position >= 0
    label_matrix = np.full((n, len(landmarks)), NO_LABEL, dtype=np.uint8)

    def _worker(i: int):
        root = int(landmarks[i])
        hits = label_bfs(graph, root, is_landmark, label_matrix[:, i])
        return root, hits

    meta: Dict[Tuple[int, int], int] = {}
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        for root, hits in pool.map(_worker, range(len(landmarks))):
            _merge_meta_edges(meta, position, root, hits)
    return PathLabelling(
        landmarks=landmarks,
        landmark_position=position,
        label_matrix=label_matrix,
        meta_edges=meta,
    )
