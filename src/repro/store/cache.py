"""Block-granular page cache for cold label arrays.

A :class:`PageCache` holds fixed-size blocks of cold array data under
an LRU policy with a byte budget, plus a *pinned* set that the budget
never evicts (the hot-tier hub label rows). A :class:`CachedArray`
wraps one cold, one-dimensional on-disk array and serves reads
through the cache: scalar indexing, contiguous slices, and the fancy
integer-array gathers the batch kernel's ``gather_tail`` issues all
fault in whole blocks, so repeated touches of the same label region
hit RAM instead of disk.

Counters (``hits`` / ``misses`` / ``evictions`` / ``pinned_hits``)
are plain attributes read by :meth:`PageCache.stats`; they flow up
through ``LabelStore.stats`` into serving ``/stats``, and every live
cache is also weakly registered with :mod:`repro.obs` so the metrics
scrape sums the same counters into the ``store_page_cache_*`` series
(``/stats`` and ``/metrics`` agree by construction). A block miss
additionally marks ``page_faults`` on the innermost open trace span,
so sampled query traces show exactly which stage paid for disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import IndexFormatError
from ..obs import register_page_cache
from ..obs.trace import current_add

__all__ = ["PageCache", "CachedArray", "DEFAULT_CACHE_BYTES",
           "DEFAULT_BLOCK_BYTES"]

#: Default LRU byte budget for cold blocks.
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024

#: Default block size; amortizes one disk read over ~8k tail entries.
DEFAULT_BLOCK_BYTES = 64 * 1024

#: Cache key: (array name, block index).
_Key = Tuple[str, int]


class PageCache:
    """LRU block cache with a byte budget and an unevictable pin set."""

    __slots__ = ("budget_bytes", "block_bytes", "hits", "misses",
                 "evictions", "pinned_hits", "_lru", "_pinned",
                 "_lru_bytes", "_pinned_bytes", "__weakref__")

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES) -> None:
        if budget_bytes < 0:
            raise IndexFormatError("cache budget must be >= 0")
        if block_bytes < 512:
            raise IndexFormatError("block size must be >= 512 bytes")
        self.budget_bytes = int(budget_bytes)
        self.block_bytes = int(block_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pinned_hits = 0
        self._lru: "OrderedDict[_Key, np.ndarray]" = OrderedDict()
        self._pinned: Dict[_Key, np.ndarray] = {}
        self._lru_bytes = 0
        self._pinned_bytes = 0
        register_page_cache(self)

    def get(self, key: _Key,
            loader: Callable[[], np.ndarray]) -> np.ndarray:
        """The block under ``key``, loading (and caching) on a miss."""
        block = self._pinned.get(key)
        if block is not None:
            self.pinned_hits += 1
            return block
        block = self._lru.get(key)
        if block is not None:
            self.hits += 1
            self._lru.move_to_end(key)
            return block
        self.misses += 1
        current_add("page_faults")
        block = loader()
        self._lru[key] = block
        self._lru_bytes += block.nbytes
        self._evict()
        return block

    def pin(self, key: _Key,
            loader: Callable[[], np.ndarray]) -> np.ndarray:
        """Load ``key`` into the pin set; pinned blocks never evict.

        Pinned bytes count against the budget (they squeeze the LRU
        share) but are themselves exempt from eviction — pinning is
        the tier policy, not a cache hint.
        """
        block = self._pinned.get(key)
        if block is not None:
            return block
        block = self._lru.pop(key, None)
        if block is not None:
            self._lru_bytes -= block.nbytes
        else:
            block = loader()
        self._pinned[key] = block
        self._pinned_bytes += block.nbytes
        self._evict()
        return block

    def _evict(self) -> None:
        while self._lru and \
                self._lru_bytes + self._pinned_bytes > self.budget_bytes:
            _, block = self._lru.popitem(last=False)
            self._lru_bytes -= block.nbytes
            self.evictions += 1

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held in RAM (pinned + LRU)."""
        return self._lru_bytes + self._pinned_bytes

    @property
    def pinned_bytes(self) -> int:
        return self._pinned_bytes

    def stats(self) -> Dict[str, float]:
        touches = self.hits + self.pinned_hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pinned_hits": self.pinned_hits,
            "hit_rate": ((self.hits + self.pinned_hits) / touches
                         if touches else 0.0),
            "resident_bytes": self.resident_bytes,
            "pinned_bytes": self._pinned_bytes,
            "budget_bytes": self.budget_bytes,
            "block_bytes": self.block_bytes,
        }

    def clear(self) -> None:
        """Drop every block, pinned included; counters persist."""
        self._lru.clear()
        self._pinned.clear()
        self._lru_bytes = 0
        self._pinned_bytes = 0


class CachedArray:
    """Read-only view of one cold on-disk array through a page cache.

    ``fetch(lo, hi)`` reads elements ``[lo, hi)`` from storage; the
    wrapper only ever calls it on whole blocks. Supports the access
    patterns the label code paths use — scalar ``a[i]``, contiguous
    ``a[lo:hi]``, and fancy ``a[int_array]`` — and nothing else.
    """

    __slots__ = ("name", "dtype", "_length", "_fetch", "_cache",
                 "_block_elems")

    def __init__(self, name: str, length: int, dtype,
                 fetch: Callable[[int, int], np.ndarray],
                 cache: PageCache) -> None:
        self.name = name
        self.dtype = np.dtype(dtype)
        self._length = int(length)
        self._fetch = fetch
        self._cache = cache
        self._block_elems = max(
            1, cache.block_bytes // self.dtype.itemsize)

    # -- sizing ---------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def shape(self) -> Tuple[int, ...]:
        return (self._length,)

    @property
    def size(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Logical (on-disk) size, not resident size."""
        return self._length * self.dtype.itemsize

    # -- block plumbing -------------------------------------------------

    def _block(self, block_index: int) -> np.ndarray:
        lo = block_index * self._block_elems
        hi = min(self._length, lo + self._block_elems)
        return self._cache.get((self.name, block_index),
                               lambda: self._fetch(lo, hi))

    def pin_range(self, start: int, stop: int) -> None:
        """Pin every block covering elements ``[start, stop)``."""
        start = max(0, int(start))
        stop = min(self._length, int(stop))
        if stop <= start:
            return
        for block_index in range(start // self._block_elems,
                                 (stop - 1) // self._block_elems + 1):
            lo = block_index * self._block_elems
            hi = min(self._length, lo + self._block_elems)
            self._cache.pin((self.name, block_index),
                            lambda lo=lo, hi=hi: self._fetch(lo, hi))

    # -- reads ----------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self._length
            if not 0 <= index < self._length:
                raise IndexError(
                    f"index {key} out of range for cached array "
                    f"{self.name!r} of length {self._length}")
            block_index, offset = divmod(index, self._block_elems)
            return self._block(block_index)[offset]
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                raise IndexError(
                    "cached arrays support contiguous slices only")
            if stop <= start:
                return np.empty(0, dtype=self.dtype)
            first = start // self._block_elems
            last = (stop - 1) // self._block_elems
            if first == last:
                block = self._block(first)
                lo = start - first * self._block_elems
                return block[lo:lo + (stop - start)]
            parts = [self._block(i) for i in range(first, last + 1)]
            joined = np.concatenate(parts)
            lo = start - first * self._block_elems
            return joined[lo:lo + (stop - start)]
        positions = np.asarray(key)
        if positions.dtype == bool or positions.dtype.kind not in "iu":
            raise IndexError(
                f"cached array {self.name!r} supports integer "
                f"indexing only, got {positions.dtype}")
        flat = positions.ravel().astype(np.int64, copy=False)
        out = np.empty(flat.shape, dtype=self.dtype)
        if len(flat):
            blocks = flat // self._block_elems
            order = np.argsort(blocks, kind="stable")
            sorted_blocks = blocks[order]
            starts = np.nonzero(
                np.r_[True, np.diff(sorted_blocks) != 0])[0]
            bounds = np.r_[starts, len(flat)]
            for run in range(len(starts)):
                selector = order[bounds[run]:bounds[run + 1]]
                block_index = int(sorted_blocks[starts[run]])
                block = self._block(block_index)
                out[selector] = block[
                    flat[selector] - block_index * self._block_elems]
        return out.reshape(positions.shape)

    def __array__(self, dtype=None, copy=None):
        """Materialize the full array (small arrays / tests only)."""
        full = self[0:self._length]
        if dtype is not None:
            full = np.asarray(full, dtype=dtype)
        return np.array(full) if copy else np.asarray(full)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CachedArray({self.name!r}, length={self._length}, "
                f"dtype={self.dtype}, block_elems={self._block_elems})")
