"""The packed label-store container format.

A packed store is a single file holding page-aligned, *uncompressed*
numpy arrays — the layout :mod:`numpy.memmap` wants and the
compressed npz persistence format (:mod:`repro.engine.persist`)
cannot provide. Layout::

    [8-byte magic "REPROSTR"]
    [8-byte little-endian header length H]
    [H bytes of JSON header]
    [zero padding to the next page boundary]
    [array payloads, each starting on a page boundary]

The JSON header is self-describing::

    {"format": "repro-labelstore", "version": 1,
     "method": "<registry key>", "state": {...family metadata...},
     "page_bytes": 4096,
     "source_arrays": [...names that reconstruct the family...],
     "arrays": [{"name", "dtype", "shape", "offset", "nbytes",
                 "tier": "hot" | "cold"}, ...]}

``offset`` is relative to the payload base, which both sides compute
as ``align(16 + H, page_bytes)`` — the header never has to contain a
value that depends on its own length. ``tier`` records the packing
policy: ``hot`` arrays are pinned in RAM when the store is opened,
``cold`` arrays stay on disk and are faulted block-by-block through
the :class:`~repro.store.cache.PageCache`.

Writes are crash-safe: the store is written to a same-directory
temporary file, fsynced, and :func:`os.replace`'d into place, so a
crash mid-write can never leave a torn container behind the final
name.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterable, Mapping, Tuple

import numpy as np

from ..errors import IndexFormatError

__all__ = ["STORE_MAGIC", "STORE_FORMAT", "STORE_VERSION",
           "DEFAULT_PAGE_BYTES", "is_store_file", "write_store",
           "read_store_header"]

#: First 8 bytes of every packed store.
STORE_MAGIC = b"REPROSTR"

STORE_FORMAT = "repro-labelstore"
STORE_VERSION = 1

#: Default payload alignment; matches the common OS page size.
DEFAULT_PAGE_BYTES = 4096


def _align(offset: int, page: int) -> int:
    return (offset + page - 1) // page * page


def is_store_file(path) -> bool:
    """Whether ``path`` starts with the packed-store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


def write_store(path, *, method: str, state: Mapping[str, Any],
                arrays: Mapping[str, np.ndarray],
                hot: Iterable[str],
                source_arrays: Iterable[str],
                extra: Mapping[str, Any] = (),
                page_bytes: int = DEFAULT_PAGE_BYTES) -> Dict[str, Any]:
    """Write a packed store; returns the header that was written.

    ``hot`` names the arrays the opener pins in RAM; everything else
    is cold and must be one-dimensional (the block cache serves flat
    arrays). ``source_arrays`` names the subset that reconstructs the
    family via ``from_state`` — derived arrays (the dense head, the
    tail CSR) are excluded from it.
    """
    if page_bytes < 512 or page_bytes & (page_bytes - 1):
        raise IndexFormatError(
            f"page_bytes must be a power of two >= 512, "
            f"got {page_bytes}")
    hot = set(hot)
    source_arrays = list(source_arrays)
    for name in (*hot, *source_arrays):
        if name not in arrays:
            raise IndexFormatError(
                f"store header names unknown array {name!r}")
    specs = []
    blobs = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise IndexFormatError(
                f"array {name!r} has an object dtype; stores hold "
                f"plain numeric arrays only")
        tier = "hot" if name in hot else "cold"
        if tier == "cold" and array.ndim != 1:
            raise IndexFormatError(
                f"cold array {name!r} must be one-dimensional "
                f"(got shape {array.shape}); the block cache serves "
                f"flat arrays")
        offset = _align(offset, page_bytes)
        specs.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
            "tier": tier,
        })
        blobs.append(array)
        offset += array.nbytes
    header = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "method": method,
        "state": dict(state),
        "page_bytes": page_bytes,
        "source_arrays": source_arrays,
        "arrays": specs,
        **dict(extra),
    }
    encoded = json.dumps(header).encode("utf-8")
    base = _align(16 + len(encoded), page_bytes)

    directory = os.path.dirname(os.path.abspath(os.fspath(path)))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".repro-store-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(STORE_MAGIC)
            handle.write(len(encoded).to_bytes(8, "little"))
            handle.write(encoded)
            handle.write(b"\x00" * (base - 16 - len(encoded)))
            cursor = 0
            for spec, blob in zip(specs, blobs):
                handle.write(b"\x00" * (spec["offset"] - cursor))
                handle.write(blob.tobytes())
                cursor = spec["offset"] + spec["nbytes"]
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise IndexFormatError(
            f"{path}: cannot write label store ({exc})") from exc
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover
                pass
    return header


def read_store_header(path) -> Tuple[Dict[str, Any], int]:
    """Read and validate a store header; returns ``(header, base)``.

    ``base`` is the absolute file offset of the payload region. Every
    structural failure — wrong magic, malformed JSON, a payload that
    the file is too short to contain (a truncated copy) — raises
    :class:`~repro.errors.IndexFormatError`, never a raw OS or
    decoding error.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            magic = handle.read(len(STORE_MAGIC))
            if magic != STORE_MAGIC:
                raise IndexFormatError(
                    f"{path}: not a packed label store")
            raw_len = handle.read(8)
            if len(raw_len) != 8:
                raise IndexFormatError(f"{path}: truncated store header")
            header_len = int.from_bytes(raw_len, "little")
            if header_len <= 0 or header_len > size:
                raise IndexFormatError(f"{path}: truncated store header")
            encoded = handle.read(header_len)
            if len(encoded) != header_len:
                raise IndexFormatError(f"{path}: truncated store header")
    except OSError as exc:
        raise IndexFormatError(
            f"{path}: cannot read label store ({exc})") from exc
    try:
        header = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(
            f"{path}: malformed store header") from exc
    if not isinstance(header, dict) \
            or header.get("format") != STORE_FORMAT:
        raise IndexFormatError(f"{path}: not a packed label store")
    if header.get("version") != STORE_VERSION:
        raise IndexFormatError(
            f"{path}: store version {header.get('version')!r} is not "
            f"supported (expected {STORE_VERSION})")
    if not isinstance(header.get("method"), str):
        raise IndexFormatError(
            f"{path}: store header is missing the method")
    page = header.get("page_bytes")
    specs = header.get("arrays")
    if not isinstance(page, int) or page <= 0 \
            or not isinstance(specs, list):
        raise IndexFormatError(f"{path}: malformed store header")
    base = _align(16 + header_len, page)
    for spec in specs:
        try:
            end = base + int(spec["offset"]) + int(spec["nbytes"])
            np.dtype(spec["dtype"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{path}: malformed array spec in store header"
            ) from exc
        if end > size:
            raise IndexFormatError(
                f"{path}: store is truncated — array "
                f"{spec.get('name')!r} needs {end} bytes, file has "
                f"{size}")
    return header, base
