"""Pack and open label indexes as tiered out-of-core stores.

:func:`pack_index_store` converts a built (or npz-saved) ``ppl`` /
``parent-ppl`` index into the packed container of
:mod:`repro.store.format`, deciding the tier split at pack time:

* **hot** — the graph CSR, the landmark order, the label/tail offset
  arrays, and the PR-5 dense hub-rank head matrix. Small, touched by
  every query, pinned in RAM at open.
* **cold** — the flat label rank/distance arrays (the scalar query
  path) and the CSR tail of the batch kernel. The bulk of the index;
  served block-by-block through the page cache.

:func:`open_store_index` opens a packed store as a fully functional
index of the *same family* (``method`` stays ``"ppl"`` /
``"parent-ppl"``): per-vertex label rows become lazy sequences
reading through the store, and the batch kernel's
:class:`~repro.engine.batch.LabelArrays` is assembled over the
store's cold tail directly, so both the scalar and the
``distance_many`` paths fault in only the label windows a query
touches. High-degree hub rows (``order[:hot_rows]``) are pinned —
skewed real-world query mixes hit those rows constantly, and pinned
blocks never evict.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core.build_kernels import ParentsView, RaggedView
from ..engine.batch import LabelArrays
from ..engine.families import ParentPplPathIndex, PplPathIndex
from ..errors import IndexFormatError
from .cache import DEFAULT_BLOCK_BYTES, DEFAULT_CACHE_BYTES
from .container import LabelStore
from .format import DEFAULT_PAGE_BYTES, write_store

__all__ = ["pack_index_store", "open_store_index", "StorePplIndex",
           "StoreParentPplIndex", "STORE_METHODS",
           "DEFAULT_HEAD_WIDTH", "DEFAULT_HOT_ROWS"]

#: Families the packed store understands.
STORE_METHODS = ("ppl", "parent-ppl")

#: Head width at pack time. Narrower than the in-RAM kernel default on
#: purpose: the head is hot-tier (always resident), so a packed store
#: trades a little head coverage for a small pinned footprint.
DEFAULT_HEAD_WIDTH = 32

#: Hub label rows (by landmark order) pinned in RAM at open.
DEFAULT_HOT_ROWS = 32


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------

def pack_index_store(source, path, *,
                     head_width: int = DEFAULT_HEAD_WIDTH,
                     hot_rows: int = DEFAULT_HOT_ROWS,
                     page_bytes: int = DEFAULT_PAGE_BYTES
                     ) -> Dict[str, Any]:
    """Write ``source`` (an index or an npz archive path) as a packed
    store at ``path``; returns the written header.

    Only the label families pack (``ppl`` / ``parent-ppl``): their
    state is already flat CSR arrays, which is exactly the layout a
    paged store serves. Other families raise
    :class:`~repro.errors.IndexFormatError`.
    """
    if hasattr(source, "to_state"):
        method = source.method
        _check_method(source, method)
        state, arrays = source.to_state()
    else:
        from ..engine.persist import read_index_state

        method, state, arrays = read_index_state(source)
        _check_method(source, method)

    offsets = np.asarray(arrays["label_offsets"], dtype=np.int64)
    labels = LabelArrays.from_flat(
        offsets,
        np.asarray(arrays["label_ranks"]),
        np.asarray(arrays["label_dists"]),
        head_width=head_width)

    packed: Dict[str, np.ndarray] = {
        "indptr": np.asarray(arrays["indptr"]),
        "indices": np.asarray(arrays["indices"]),
        "order": np.asarray(arrays["order"], dtype=np.int64),
        "label_offsets": offsets,
        "head": labels.head,
        "tail_offsets": labels.tail_offsets,
        "label_ranks": np.asarray(arrays["label_ranks"],
                                  dtype=np.int64),
        "label_dists": np.asarray(arrays["label_dists"],
                                  dtype=np.int32),
        "tail_ranks": labels.tail_ranks,
        "tail_dists": labels.tail_dists,
    }
    source_arrays = ["indptr", "indices", "order", "label_offsets",
                     "label_ranks", "label_dists"]
    if method == "parent-ppl":
        packed["parent_offsets"] = np.asarray(arrays["parent_offsets"],
                                              dtype=np.int64)
        packed["parents"] = np.asarray(arrays["parents"],
                                       dtype=np.int32)
        source_arrays += ["parent_offsets", "parents"]

    hot = ("indptr", "indices", "order", "label_offsets",
           "tail_offsets", "head")
    return write_store(
        path, method=method, state=dict(state), arrays=packed,
        hot=hot, source_arrays=source_arrays,
        extra={
            "head_width": int(labels.head_width),
            "hot_rows": int(hot_rows),
            "label_entries": int(offsets[-1]),
            "num_vertices": int(len(offsets) - 1),
        },
        page_bytes=page_bytes)


def _check_method(source, method: str) -> None:
    if method not in STORE_METHODS:
        raise IndexFormatError(
            f"cannot pack a {method!r} index into a label store; "
            f"supported families: {STORE_METHODS} "
            f"(source: {source!r})")


# ----------------------------------------------------------------------
# Lazy label views (the scalar query path)
# ----------------------------------------------------------------------
# The view classes themselves live with the construction kernels (one
# definition serves kernel-built, state-loaded, and store-backed
# indexes); ``flat`` here is a block-cached cold array, so ``rows[v]``
# costs one or two block faults.

_LazyRagged = RaggedView
_LazyParents = ParentsView


# ----------------------------------------------------------------------
# Store-backed index families
# ----------------------------------------------------------------------

class _StoreIndexMixin:
    """Shared store plumbing for the store-backed families.

    The subclasses keep their family's ``method`` (they are *not*
    re-registered): a store-backed ppl index answers exactly like a
    ppl index, it just reads its labels through the store. Presetting
    ``_label_arrays_cache`` routes the inherited ``distance_many``
    (via :func:`~repro.engine.batch.cached_label_arrays`) straight to
    the store-backed :class:`~repro.engine.batch.LabelArrays` — no
    query-path overrides, no list materialization.
    """

    label_store: LabelStore

    def _attach_store(self, store: LabelStore,
                      label_arrays: LabelArrays) -> None:
        self.label_store = store
        self._label_offsets = store.array("label_offsets")
        self._label_arrays_cache = (self.version, label_arrays)

    def num_entries(self) -> int:
        return int(self._label_offsets[-1])

    def store_stats(self) -> Dict[str, Any]:
        """Page-cache and tier counters (serving surfaces these)."""
        return self.label_store.stats()

    def close(self) -> None:
        self.label_store.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StorePplIndex(_StoreIndexMixin, PplPathIndex):
    """A ``ppl`` index whose labels live in a packed store."""

    def __init__(self, store: LabelStore, graph, order, label_ranks,
                 label_dists, label_arrays: LabelArrays) -> None:
        PplPathIndex.__init__(self, graph, order, label_ranks,
                              label_dists)
        self._attach_store(store, label_arrays)


class StoreParentPplIndex(_StoreIndexMixin, ParentPplPathIndex):
    """A ``parent-ppl`` index whose labels live in a packed store."""

    def __init__(self, store: LabelStore, graph, order, label_ranks,
                 label_dists, label_parents,
                 label_arrays: LabelArrays) -> None:
        ParentPplPathIndex.__init__(self, graph, order, label_ranks,
                                    label_dists, label_parents)
        self._attach_store(store, label_arrays)

    def num_parent_slots(self) -> int:
        return len(self.label_store.array("parents"))


# ----------------------------------------------------------------------
# Opening
# ----------------------------------------------------------------------

def open_store_index(source, *, io: str = "mmap",
                     cache_bytes: int = DEFAULT_CACHE_BYTES,
                     block_bytes: int = DEFAULT_BLOCK_BYTES,
                     hot_rows: Optional[int] = None):
    """Open a packed store (path or :class:`LabelStore`) as an index.

    ``hot_rows`` overrides the pin count recorded at pack time: the
    label rows of the ``hot_rows`` highest-ranked (highest-degree)
    vertices are pinned in the page cache at open, exempt from
    eviction.
    """
    from ..graph.csr import Graph

    if isinstance(source, LabelStore):
        store = source
    else:
        store = LabelStore.open(source, io=io,
                                cache_bytes=cache_bytes,
                                block_bytes=block_bytes)
    method = store.method
    if method not in STORE_METHODS:
        raise IndexFormatError(
            f"{store.path}: store holds a {method!r} index; only "
            f"{STORE_METHODS} stores open as indexes")

    graph = Graph(store.array("indptr"), store.array("indices"),
                  validate=True)
    order = store.array("order")
    offsets = store.array("label_offsets")
    label_ranks = _LazyRagged(offsets, store.array("label_ranks"))
    label_dists = _LazyRagged(offsets, store.array("label_dists"))
    labels = LabelArrays(store.array("head"),
                         store.array("tail_offsets"),
                         store.array("tail_ranks"),
                         store.array("tail_dists"),
                         num_ranks=len(offsets) - 1)

    if method == "parent-ppl":
        parents = _LazyParents(offsets,
                               store.array("parent_offsets"),
                               store.array("parents"))
        index = StoreParentPplIndex(store, graph, order, label_ranks,
                                    label_dists, parents, labels)
    else:
        index = StorePplIndex(store, graph, order, label_ranks,
                              label_dists, labels)

    if hot_rows is None:
        hot_rows = int(store.header.get("hot_rows", DEFAULT_HOT_ROWS))
    _pin_hub_rows(store, order, offsets, hot_rows)
    return index


def _pin_hub_rows(store: LabelStore, order, offsets,
                  hot_rows: int) -> None:
    """Pin the label rows of the top-ranked hub vertices.

    Degree-ordered labellings concentrate traffic on the hubs — both
    because skewed query mixes name them directly and because every
    merge-join scans the low ranks first. Their rows are tiny next to
    the cold tier, so pinning them buys a high floor on the hit rate.
    """
    for name in ("label_ranks", "label_dists"):
        cold = store.array(name)
        if not hasattr(cold, "pin_range"):  # pragma: no cover
            continue
        for vertex in np.asarray(order[:max(0, hot_rows)]).tolist():
            cold.pin_range(int(offsets[vertex]),
                           int(offsets[vertex + 1]))
