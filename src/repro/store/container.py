"""`LabelStore` — an opened packed store with tiered residency.

Opening a store costs the header plus the hot-tier arrays (copied
into RAM); every cold array becomes a :class:`~repro.store.cache.
CachedArray` faulting blocks through one shared
:class:`~repro.store.cache.PageCache`. Two I/O backends:

``io="mmap"`` (default)
    One ``numpy.memmap`` over the file; block faults slice-and-copy
    out of the mapping. The OS page cache backs the mapping, so N
    serving workers opening the same store share one set of physical
    pages — the property the ``store="mmap"`` snapshot transport is
    built on.
``io="pread"``
    Positional ``os.pread`` per block fault, no mapping. Byte-for-
    byte the same data; used where resident-set accounting must be
    exact (mapped pages count toward RSS, so a benchmark asserting an
    RSS budget wants reads that only land in the page cache's own
    buffers).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..errors import IndexFormatError
from .cache import (
    CachedArray,
    DEFAULT_BLOCK_BYTES,
    DEFAULT_CACHE_BYTES,
    PageCache,
)
from .format import read_store_header

__all__ = ["LabelStore", "STORE_IO_MODES"]

#: Supported block-fault backends.
STORE_IO_MODES = ("mmap", "pread")


class LabelStore:
    """One opened packed label store: hot arrays in RAM, cold on disk."""

    def __init__(self, path, header: Dict[str, Any], base: int, *,
                 io: str, cache: PageCache) -> None:
        self._path = os.fspath(path)
        self._header = header
        self._base = base
        self._io = io
        self._cache = cache
        self._mm: Optional[np.memmap] = None
        self._fd: Optional[int] = None
        self._closed = False
        try:
            if io == "mmap":
                self._mm = np.memmap(self._path, dtype=np.uint8,
                                     mode="r")
            else:
                self._fd = os.open(self._path, os.O_RDONLY)
        except (OSError, ValueError) as exc:
            raise IndexFormatError(
                f"{self._path}: cannot open label store ({exc})"
            ) from exc
        self._arrays: Dict[str, Any] = {}
        self._hot_bytes = 0
        self._cold_bytes = 0
        for spec in header["arrays"]:
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            offset = base + int(spec["offset"])
            if spec["tier"] == "hot":
                self._arrays[name] = self._read_span(
                    offset, dtype, int(np.prod(shape, dtype=np.int64))
                ).reshape(shape)
                self._hot_bytes += int(spec["nbytes"])
            else:
                length = shape[0] if shape else 0
                self._arrays[name] = CachedArray(
                    name, length, dtype,
                    self._make_fetch(offset, dtype), cache)
                self._cold_bytes += int(spec["nbytes"])

    @classmethod
    def open(cls, path, *, io: str = "mmap",
             cache_bytes: int = DEFAULT_CACHE_BYTES,
             block_bytes: int = DEFAULT_BLOCK_BYTES) -> "LabelStore":
        """Open a packed store written by :func:`~repro.store.format.
        write_store`; structural problems raise
        :class:`~repro.errors.IndexFormatError`."""
        if io not in STORE_IO_MODES:
            raise IndexFormatError(
                f"unknown store io mode {io!r}; "
                f"expected one of {STORE_IO_MODES}")
        header, base = read_store_header(path)
        cache = PageCache(budget_bytes=cache_bytes,
                          block_bytes=block_bytes)
        return cls(path, header, base, io=io, cache=cache)

    # -- raw reads ------------------------------------------------------

    def _read_span(self, byte_offset: int, dtype: np.dtype,
                   count: int) -> np.ndarray:
        nbytes = count * dtype.itemsize
        if self._mm is not None:
            raw = np.array(self._mm[byte_offset:byte_offset + nbytes])
        else:
            data = os.pread(self._fd, nbytes, byte_offset)
            if len(data) != nbytes:
                raise IndexFormatError(
                    f"{self._path}: short read at offset "
                    f"{byte_offset} — store is truncated")
            raw = np.frombuffer(bytearray(data), dtype=np.uint8)
        return raw.view(dtype)

    def _make_fetch(self, byte_offset: int, dtype: np.dtype):
        def fetch(lo: int, hi: int) -> np.ndarray:
            if self._closed:
                raise IndexFormatError(
                    f"{self._path}: label store is closed")
            return self._read_span(byte_offset + lo * dtype.itemsize,
                                   dtype, hi - lo)
        return fetch

    # -- surface --------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def method(self) -> str:
        return self._header["method"]

    @property
    def state(self) -> Dict[str, Any]:
        """Family metadata recorded at pack time."""
        return self._header.get("state", {})

    @property
    def header(self) -> Dict[str, Any]:
        return self._header

    @property
    def cache(self) -> PageCache:
        return self._cache

    @property
    def arrays(self) -> Mapping[str, Any]:
        """name -> hot ndarray or cold :class:`CachedArray`."""
        return self._arrays

    def array(self, name: str):
        try:
            return self._arrays[name]
        except KeyError:
            raise IndexFormatError(
                f"{self._path}: store has no array {name!r} "
                f"(has {sorted(self._arrays)})") from None

    def array_names(self) -> List[str]:
        return [spec["name"] for spec in self._header["arrays"]]

    @property
    def hot_bytes(self) -> int:
        return self._hot_bytes

    @property
    def cold_bytes(self) -> int:
        return self._cold_bytes

    def stats(self) -> Dict[str, Any]:
        """Tier sizes plus the page-cache counters, one flat dict."""
        cache = self._cache.stats()
        total = self._hot_bytes + self._cold_bytes
        return {
            **cache,
            "io": self._io,
            "hot_bytes": self._hot_bytes,
            "cold_bytes": self._cold_bytes,
            "hot_fraction": (self._hot_bytes / total if total
                             else 0.0),
            "resident_bytes": self._hot_bytes
            + cache["resident_bytes"],
        }

    def close(self) -> None:
        """Release the mapping / descriptor and drop cached blocks."""
        if self._closed:
            return
        self._closed = True
        self._cache.clear()
        if self._mm is not None:
            self._mm = None
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover
                pass
            self._fd = None

    def __enter__(self) -> "LabelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LabelStore({self._path!r}, method={self.method!r}, "
                f"hot={self._hot_bytes}B, cold={self._cold_bytes}B, "
                f"io={self._io!r})")
