"""Out-of-core label store: tiered storage for bigger-than-RAM indexes.

Every serving worker used to materialize the full snapshot in memory,
capping the servable index at RAM times the worker count. This
package moves the label arrays into a packed on-disk container and
serves queries through a two-tier policy:

* :mod:`~repro.store.format` — the ``REPROSTR`` container: page-
  aligned, *uncompressed* numpy arrays (the layout ``numpy.memmap``
  needs and compressed npz cannot provide), with a crash-safe
  temp-file + ``os.replace`` writer;
* :mod:`~repro.store.cache` — a block-granular LRU page cache with a
  byte budget, an unevictable pin set, and hit/miss/eviction
  counters, plus the :class:`CachedArray` wrapper that serves cold
  arrays block-by-block;
* :mod:`~repro.store.container` — :class:`LabelStore`, an opened
  store: hot-tier arrays copied into RAM, cold arrays faulted through
  the cache, over ``mmap`` (workers share the OS page cache) or
  ``pread`` (exact RSS accounting);
* :mod:`~repro.store.index` — :func:`pack_index_store` /
  :func:`open_store_index`: ``ppl`` / ``parent-ppl`` indexes whose
  scalar and batched query paths read labels through the store.

Typical use::

    from repro.store import pack_index_store, open_store_index

    pack_index_store("douban.idx", "douban.store")   # npz -> packed
    index = open_store_index("douban.store",
                             cache_bytes=16 * 2**20)
    index.distance_many(pairs)        # faults only touched blocks
    index.store_stats()               # hits/misses/evictions/tiers

``load_index(path)`` on a packed store dispatches here, and the
serving subsystem's ``store="mmap"`` mode publishes snapshots as
packed stores that all workers open read-only.
"""

from .cache import (
    CachedArray,
    DEFAULT_BLOCK_BYTES,
    DEFAULT_CACHE_BYTES,
    PageCache,
)
from .container import LabelStore, STORE_IO_MODES
from .format import (
    DEFAULT_PAGE_BYTES,
    STORE_FORMAT,
    STORE_MAGIC,
    STORE_VERSION,
    is_store_file,
    read_store_header,
    write_store,
)
from .index import (
    DEFAULT_HEAD_WIDTH,
    DEFAULT_HOT_ROWS,
    STORE_METHODS,
    StoreParentPplIndex,
    StorePplIndex,
    open_store_index,
    pack_index_store,
)

__all__ = [
    "LabelStore",
    "PageCache",
    "CachedArray",
    "pack_index_store",
    "open_store_index",
    "StorePplIndex",
    "StoreParentPplIndex",
    "is_store_file",
    "write_store",
    "read_store_header",
    "STORE_MAGIC",
    "STORE_FORMAT",
    "STORE_VERSION",
    "STORE_METHODS",
    "STORE_IO_MODES",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_HEAD_WIDTH",
    "DEFAULT_HOT_ROWS",
]
