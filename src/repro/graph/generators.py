"""Seeded synthetic graph generators.

The paper evaluates on twelve real networks (social, web, co-authorship,
communication, computer). Those datasets are multi-gigabyte downloads we
cannot ship or fetch offline, so the workload layer substitutes seeded
synthetic graphs whose *structural* properties (heavy-tailed degrees,
small diameter, clustering, hub dominance) match each network type. The
generators here are the primitives for that substitution; all are
deterministic given a seed.

Every generator returns the largest-connected-component-preserving raw
graph; :func:`largest_connected_component` is applied by the workload
layer because the paper assumes connected graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import check_random_state
from ..errors import GraphValidationError
from .builder import build_graph
from .csr import Graph
from .traversal import connected_components

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "chung_lu",
    "powerlaw_cluster",
    "stochastic_block",
    "grid_2d",
    "star_overlay",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "largest_connected_component",
]


def path_graph(n: int) -> Graph:
    """Simple path 0 - 1 - ... - (n-1)."""
    if n < 1:
        raise GraphValidationError("path graph needs n >= 1")
    u = np.arange(n - 1, dtype=np.int64)
    return build_graph((u, u + 1), num_vertices=n)


def cycle_graph(n: int) -> Graph:
    """Simple cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphValidationError("cycle graph needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    return build_graph((u, (u + 1) % n), num_vertices=n)


def complete_graph(n: int) -> Graph:
    """Clique on ``n`` vertices."""
    if n < 1:
        raise GraphValidationError("complete graph needs n >= 1")
    i, j = np.triu_indices(n, k=1)
    return build_graph((i.astype(np.int64), j.astype(np.int64)),
                       num_vertices=n)


def grid_2d(rows: int, cols: int) -> Graph:
    """Rows x cols lattice — the road-network-like structure of §8.

    The paper's future work targets road networks; the grid generator
    lets the benches probe QbS behaviour on large-diameter graphs where
    landmark sketches are least effective.
    """
    if rows < 1 or cols < 1:
        raise GraphValidationError("grid needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.stack((ids[:, :-1].ravel(), ids[:, 1:].ravel()))
    vertical = np.stack((ids[:-1, :].ravel(), ids[1:, :].ravel()))
    u = np.concatenate((horizontal[0], vertical[0]))
    v = np.concatenate((horizontal[1], vertical[1]))
    return build_graph((u, v), num_vertices=rows * cols)


def erdos_renyi(n: int, p: float, seed=None) -> Graph:
    """G(n, p) random graph (vectorized pair sampling)."""
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError("p must be in [0, 1]")
    rng = check_random_state(seed)
    if n < 2 or p == 0.0:
        return Graph.empty(max(n, 0))
    # Sample the number of edges then distinct pairs — equivalent to
    # flipping each pair independently for our purposes and O(m) not O(n^2).
    max_pairs = n * (n - 1) // 2
    num_edges = rng.binomial(max_pairs, p)
    key = rng.choice(max_pairs, size=num_edges, replace=False)
    # Invert the triangular pair index (row-major over i<j).
    i = (n - 2 - np.floor(
        np.sqrt(-8.0 * key + 4.0 * n * (n - 1) - 7) / 2.0 - 0.5
    )).astype(np.int64)
    j = (key + i + 1 - i * (2 * n - i - 1) // 2).astype(np.int64)
    return build_graph((i, j), num_vertices=n)


def barabasi_albert(n: int, m: int, seed=None) -> Graph:
    """Preferential attachment (hub-dominated, power-law degrees).

    Matches the social/web networks of Table 1 in spirit: a small core
    of very high degree vertices — exactly the vertices QbS picks as
    landmarks.
    """
    if m < 1 or n <= m:
        raise GraphValidationError("require 1 <= m < n")
    rng = check_random_state(seed)
    sources = np.empty((n - m) * m, dtype=np.int64)
    targets = np.empty((n - m) * m, dtype=np.int64)
    # repeated_nodes implements the preferential attachment urn.
    repeated = list(range(m))
    cursor = 0
    for new_vertex in range(m, n):
        chosen = set()
        while len(chosen) < m:
            pick = repeated[rng.integers(len(repeated))]
            chosen.add(int(pick))
        for target in chosen:
            sources[cursor] = new_vertex
            targets[cursor] = target
            cursor += 1
            repeated.append(target)
            repeated.append(new_vertex)
    return build_graph((sources, targets), num_vertices=n)


def watts_strogatz(n: int, k: int, p: float, seed=None) -> Graph:
    """Small-world ring lattice with rewiring probability ``p``."""
    if k < 2 or k % 2 or k >= n:
        raise GraphValidationError("k must be even, >= 2 and < n")
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError("p must be in [0, 1]")
    rng = check_random_state(seed)
    base = np.arange(n, dtype=np.int64)
    sources, targets = [], []
    for offset in range(1, k // 2 + 1):
        u = base
        v = (base + offset) % n
        rewire = rng.random(n) < p
        new_targets = v.copy()
        for idx in np.nonzero(rewire)[0]:
            candidate = int(rng.integers(n))
            attempts = 0
            while candidate == idx and attempts < 8:
                candidate = int(rng.integers(n))
                attempts += 1
            if candidate != idx:
                new_targets[idx] = candidate
        sources.append(u)
        targets.append(new_targets)
    return build_graph((np.concatenate(sources), np.concatenate(targets)),
                       num_vertices=n)


def chung_lu(n: int, exponent: float = 2.5, min_degree: float = 2.0,
             max_degree: Optional[float] = None, seed=None) -> Graph:
    """Power-law random graph with expected degree sequence.

    Draws a Pareto-like degree sequence with the given ``exponent`` and
    connects pairs proportionally to weight products (one round of the
    Chung–Lu model via weighted endpoint sampling). Produces the
    heavy-tailed degree distributions of the social datasets.
    """
    if n < 2:
        return Graph.empty(max(n, 0))
    if exponent <= 1.0:
        raise GraphValidationError("exponent must exceed 1")
    rng = check_random_state(seed)
    if max_degree is None:
        max_degree = float(np.sqrt(n) * 4)
    uniform = rng.random(n)
    weights = min_degree * (1.0 - uniform) ** (-1.0 / (exponent - 1.0))
    weights = np.minimum(weights, max_degree)
    total = weights.sum()
    num_edges = int(total / 2.0)
    probabilities = weights / total
    u = rng.choice(n, size=num_edges, p=probabilities)
    v = rng.choice(n, size=num_edges, p=probabilities)
    return build_graph((u.astype(np.int64), v.astype(np.int64)),
                       num_vertices=n)


def powerlaw_cluster(n: int, m: int, triangle_p: float, seed=None) -> Graph:
    """Holme–Kim model: preferential attachment plus triangle closure.

    Gives the clustered, power-law structure of co-authorship networks
    (DBLP in Table 1).
    """
    if m < 1 or n <= m:
        raise GraphValidationError("require 1 <= m < n")
    if not 0.0 <= triangle_p <= 1.0:
        raise GraphValidationError("triangle_p must be in [0, 1]")
    rng = check_random_state(seed)
    sources, targets = [], []
    repeated = list(range(m))
    adjacency = [set() for _ in range(n)]
    for new_vertex in range(m, n):
        added = set()
        count = 0
        last_target = None
        while count < m:
            if (last_target is not None and rng.random() < triangle_p
                    and adjacency[last_target]):
                # Triangle step: connect to a neighbour of the previous
                # target, closing a triangle.
                neighbours = [w for w in adjacency[last_target]
                              if w not in added and w != new_vertex]
                if neighbours:
                    target = neighbours[int(rng.integers(len(neighbours)))]
                else:
                    target = repeated[int(rng.integers(len(repeated)))]
            else:
                target = repeated[int(rng.integers(len(repeated)))]
            if target in added or target == new_vertex:
                continue
            added.add(target)
            sources.append(new_vertex)
            targets.append(target)
            adjacency[new_vertex].add(target)
            adjacency[target].add(new_vertex)
            repeated.append(target)
            repeated.append(new_vertex)
            last_target = target
            count += 1
    return build_graph(
        (np.asarray(sources, dtype=np.int64),
         np.asarray(targets, dtype=np.int64)),
        num_vertices=n,
    )


def stochastic_block(sizes, p_in: float, p_out: float, seed=None) -> Graph:
    """Stochastic block model: dense communities, sparse inter-links."""
    sizes = list(sizes)
    if any(s < 1 for s in sizes):
        raise GraphValidationError("community sizes must be positive")
    rng = check_random_state(seed)
    offsets = np.cumsum([0] + sizes)
    n = int(offsets[-1])
    pieces_u, pieces_v = [], []
    for bi, size_i in enumerate(sizes):
        block = erdos_renyi(size_i, p_in, seed=rng)
        if block.num_edges:
            arr = block.edge_array().astype(np.int64) + offsets[bi]
            pieces_u.append(arr[:, 0])
            pieces_v.append(arr[:, 1])
        for bj in range(bi + 1, len(sizes)):
            size_j = sizes[bj]
            num_cross = rng.binomial(size_i * size_j, p_out)
            if num_cross == 0:
                continue
            flat = rng.choice(size_i * size_j, size=num_cross, replace=False)
            pieces_u.append(offsets[bi] + flat // size_j)
            pieces_v.append(offsets[bj] + flat % size_j)
    if not pieces_u:
        return Graph.empty(n)
    return build_graph(
        (np.concatenate(pieces_u), np.concatenate(pieces_v)),
        num_vertices=n,
    )


def star_overlay(graph: Graph, num_hubs: int, spokes_per_hub: int,
                 seed=None) -> Graph:
    """Overlay high-degree hubs onto an existing graph.

    Emulates the extreme-hub communication/web networks (WikiTalk,
    Baidu, ClueWeb09 have max degrees of 1e5–6e6) where a handful of
    vertices touch a large slice of the graph — the regime where the
    paper reports the highest pair-coverage ratios (Figure 8).
    """
    if num_hubs < 1 or spokes_per_hub < 1:
        raise GraphValidationError("hubs and spokes must be positive")
    rng = check_random_state(seed)
    n = graph.num_vertices
    hubs = rng.choice(n, size=min(num_hubs, n), replace=False)
    extra_u, extra_v = [], []
    for hub in hubs:
        spokes = rng.choice(n, size=min(spokes_per_hub, n - 1),
                            replace=False)
        spokes = spokes[spokes != hub]
        extra_u.append(np.full(len(spokes), hub, dtype=np.int64))
        extra_v.append(spokes.astype(np.int64))
    base = graph.edge_array().astype(np.int64)
    u = np.concatenate([base[:, 0]] + extra_u)
    v = np.concatenate([base[:, 1]] + extra_v)
    return build_graph((u, v), num_vertices=n)


def largest_connected_component(graph: Graph) -> Graph:
    """Relabelled subgraph induced on the largest connected component.

    The paper assumes connected graphs ("we assume that G is undirected
    and connected"); workloads apply this after generation.
    """
    count, labels = connected_components(graph)
    if count <= 1:
        return graph
    largest = int(np.argmax(np.bincount(labels)))
    keep = labels == largest
    mapping = np.full(graph.num_vertices, -1, dtype=np.int64)
    mapping[keep] = np.arange(int(keep.sum()), dtype=np.int64)
    edges = graph.edge_array().astype(np.int64)
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    edges = edges[mask]
    return build_graph(
        (mapping[edges[:, 0]], mapping[edges[:, 1]]),
        num_vertices=int(keep.sum()),
    )
