"""Reading and writing graphs.

Two formats are supported:

* **Edge-list text** — the format SNAP / KONECT datasets ship in: one
  edge per line, whitespace separated, ``#`` or ``%`` comment lines
  ignored. Directed inputs are symmetrized on load, matching the
  paper's treatment (Table 1's ``|E_un|``). Paths ending in ``.gz``
  are transparently gzip-compressed on both read and write — SNAP
  distributes its large networks exactly this way (``*.txt.gz``).
  For raw downloads with arbitrary, non-contiguous vertex ids,
  :func:`read_snap_edge_list` compacts the ids to ``0..n-1`` and
  returns the original-id mapping; duplicate edges (including both
  orientations) collapse to one.
* **NPZ binary** — compressed numpy container with the CSR arrays;
  loads in milliseconds and round-trips exactly.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Iterator, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .builder import build_graph
from .csr import Graph

__all__ = [
    "read_edge_list",
    "read_snap_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "parse_edge_lines",
]

PathLike = Union[str, "os.PathLike[str]"]

_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str):
    """Open a text file, transparently gzip-decoding ``*.gz`` paths."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def parse_edge_lines(lines) -> Iterator[Tuple[int, int]]:
    """Yield ``(u, v)`` pairs from edge-list lines.

    Blank lines and comment lines are skipped; extra columns (weights,
    timestamps — KONECT files carry them) are ignored.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two columns, "
                f"got {line!r}"
            )
        try:
            yield int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: non-integer vertex id in {line!r}"
            ) from exc


def read_edge_list(path_or_file, num_vertices=None) -> Graph:
    """Load an edge-list file (path, file object, or text) as a graph.

    Paths ending in ``.gz`` are decompressed on the fly. Vertex ids
    are taken literally (``num_vertices`` defaults to ``max id + 1``);
    use :func:`read_snap_edge_list` for raw downloads whose ids are
    sparse or non-contiguous.
    """
    if isinstance(path_or_file, (str, os.PathLike)):
        with _open_text(path_or_file, "r") as handle:
            edges = list(parse_edge_lines(handle))
    elif isinstance(path_or_file, io.TextIOBase):
        edges = list(parse_edge_lines(path_or_file))
    else:
        raise GraphFormatError(
            "read_edge_list expects a path or a text file object"
        )
    return build_graph(edges, num_vertices=num_vertices)


def read_snap_edge_list(path_or_file) -> Tuple[Graph, np.ndarray]:
    """Load a SNAP-style edge list, compacting arbitrary vertex ids.

    SNAP downloads use the original dataset ids — non-contiguous,
    often enormous (a 4M-vertex graph can mention id 4294967295).
    Loading those literally would allocate ``max id + 1`` CSR rows, so
    this reader relabels: ids are mapped to ``0..n-1`` in ascending
    original-id order. Duplicate edges — including the same edge in
    both orientations, common in symmetrized dumps — collapse to one,
    and self loops are dropped (both via the standard builder).

    Returns ``(graph, original_ids)`` where ``original_ids[local]``
    is the id the input used (sorted ascending, so
    ``np.searchsorted(original_ids, raw_id)`` inverts the mapping).
    """
    if isinstance(path_or_file, (str, os.PathLike)):
        with _open_text(path_or_file, "r") as handle:
            edges = list(parse_edge_lines(handle))
    elif isinstance(path_or_file, io.TextIOBase):
        edges = list(parse_edge_lines(path_or_file))
    else:
        raise GraphFormatError(
            "read_snap_edge_list expects a path or a text file object"
        )
    if not edges:
        return Graph.empty(0), np.zeros(0, dtype=np.int64)
    array = np.asarray(edges, dtype=np.int64)
    if array.min() < 0:
        raise GraphFormatError("vertex ids must be non-negative")
    original_ids, compact = np.unique(array, return_inverse=True)
    compact = compact.reshape(array.shape)
    graph = build_graph(compact, num_vertices=len(original_ids))
    return graph, original_ids


def write_edge_list(graph: Graph, path: PathLike, *,
                    header: bool = True) -> None:
    """Write the graph as ``u v`` lines (one per undirected edge).

    Paths ending in ``.gz`` are gzip-compressed, matching what
    :func:`read_edge_list` accepts.
    """
    with _open_text(path, "w") as handle:
        if header:
            handle.write(
                f"# undirected graph: {graph.num_vertices} vertices, "
                f"{graph.num_edges} edges\n"
            )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def save_npz(graph: Graph, path: PathLike) -> None:
    """Serialize the CSR arrays into a compressed ``.npz`` container."""
    np.savez_compressed(
        path,
        format=np.asarray(["repro-csr-v1"]),
        indptr=graph.indptr,
        indices=graph.indices,
    )


def load_npz(path: PathLike) -> Graph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            tag = str(data["format"][0])
            indptr = data["indptr"]
            indices = data["indices"]
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: missing array {exc} — not a repro graph file"
            ) from exc
    if tag != "repro-csr-v1":
        raise GraphFormatError(f"{path}: unknown format tag {tag!r}")
    return Graph(indptr, indices, validate=True)
