"""Reading and writing graphs.

Two formats are supported:

* **Edge-list text** — the format SNAP / KONECT datasets ship in: one
  edge per line, whitespace separated, ``#`` or ``%`` comment lines
  ignored. Directed inputs are symmetrized on load, matching the
  paper's treatment (Table 1's ``|E_un|``).
* **NPZ binary** — compressed numpy container with the CSR arrays;
  loads in milliseconds and round-trips exactly.
"""

from __future__ import annotations

import io
import os
from typing import Iterator, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .builder import build_graph
from .csr import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "parse_edge_lines",
]

PathLike = Union[str, "os.PathLike[str]"]

_COMMENT_PREFIXES = ("#", "%", "//")


def parse_edge_lines(lines) -> Iterator[Tuple[int, int]]:
    """Yield ``(u, v)`` pairs from edge-list lines.

    Blank lines and comment lines are skipped; extra columns (weights,
    timestamps — KONECT files carry them) are ignored.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two columns, "
                f"got {line!r}"
            )
        try:
            yield int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: non-integer vertex id in {line!r}"
            ) from exc


def read_edge_list(path_or_file, num_vertices=None) -> Graph:
    """Load an edge-list file (path, file object, or text) as a graph."""
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            edges = list(parse_edge_lines(handle))
    elif isinstance(path_or_file, io.TextIOBase):
        edges = list(parse_edge_lines(path_or_file))
    else:
        raise GraphFormatError(
            "read_edge_list expects a path or a text file object"
        )
    return build_graph(edges, num_vertices=num_vertices)


def write_edge_list(graph: Graph, path: PathLike, *,
                    header: bool = True) -> None:
    """Write the graph as ``u v`` lines (one per undirected edge)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# undirected graph: {graph.num_vertices} vertices, "
                f"{graph.num_edges} edges\n"
            )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def save_npz(graph: Graph, path: PathLike) -> None:
    """Serialize the CSR arrays into a compressed ``.npz`` container."""
    np.savez_compressed(
        path,
        format=np.asarray(["repro-csr-v1"]),
        indptr=graph.indptr,
        indices=graph.indices,
    )


def load_npz(path: PathLike) -> Graph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            tag = str(data["format"][0])
            indptr = data["indptr"]
            indices = data["indices"]
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: missing array {exc} — not a repro graph file"
            ) from exc
    if tag != "repro-csr-v1":
        raise GraphFormatError(f"{path}: unknown format tag {tag!r}")
    return Graph(indptr, indices, validate=True)
