"""Graph substrate: CSR storage, builders, IO, generators, traversal."""

from .builder import GraphBuilder, build_graph
from .csr import Graph
from .generators import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    largest_connected_component,
    path_graph,
    powerlaw_cluster,
    star_overlay,
    stochastic_block,
    watts_strogatz,
)
from .io import (
    load_npz,
    read_edge_list,
    read_snap_edge_list,
    save_npz,
    write_edge_list,
)
from .ops import (
    average_distance_estimate,
    degree_statistics,
    density,
    diameter_estimate,
    induced_subgraph,
    is_connected,
    top_degree_vertices,
)
from .traversal import (
    bfs_distances,
    bfs_distances_bounded,
    bfs_distances_offsets,
    connected_components,
    expand_frontier,
    multi_source_bfs,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "build_graph",
    "read_edge_list",
    "read_snap_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "chung_lu",
    "powerlaw_cluster",
    "stochastic_block",
    "grid_2d",
    "star_overlay",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "largest_connected_component",
    "bfs_distances",
    "bfs_distances_bounded",
    "bfs_distances_offsets",
    "multi_source_bfs",
    "expand_frontier",
    "connected_components",
    "degree_statistics",
    "top_degree_vertices",
    "average_distance_estimate",
    "induced_subgraph",
    "is_connected",
    "diameter_estimate",
    "density",
]
