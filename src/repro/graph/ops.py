"""Whole-graph operations and statistics.

These feed Table 1 (dataset statistics) and the landmark selection
strategies; they are also generally useful substrate utilities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import UNREACHED, check_random_state
from .csr import Graph
from .traversal import bfs_distances, connected_components

__all__ = [
    "degree_statistics",
    "top_degree_vertices",
    "average_distance_estimate",
    "induced_subgraph",
    "is_connected",
    "diameter_estimate",
    "density",
    "triangle_count_estimate",
]


def induced_subgraph(graph: Graph, vertices):
    """Compacted subgraph induced on ``vertices``.

    Unlike :meth:`Graph.remove_vertices` (which keeps ids aligned with
    the original graph), the result is relabelled to local ids
    ``0..k-1`` in ascending original-id order — the form a shard wants,
    where per-shard memory must scale with the shard, not the graph.

    Returns ``(subgraph, global_ids)`` where ``global_ids[local] ==
    original id`` (sorted, so ``np.searchsorted`` inverts it).
    Duplicate input vertices are collapsed; out-of-range ids raise
    :class:`~repro.errors.VertexError`.
    """
    from ..errors import VertexError

    n = graph.num_vertices
    global_ids = np.unique(np.asarray(list(vertices), dtype=np.int64))
    if len(global_ids) and (global_ids[0] < 0 or global_ids[-1] >= n):
        bad = global_ids[0] if global_ids[0] < 0 else global_ids[-1]
        raise VertexError(int(bad), n)
    k = len(global_ids)
    local = np.full(n, -1, dtype=np.int32)
    local[global_ids] = np.arange(k, dtype=np.int32)
    src = np.repeat(np.arange(n, dtype=np.int32),
                    np.diff(graph.indptr))
    keep = (local[src] >= 0) & (local[graph.indices] >= 0)
    sub_src = local[src[keep]]
    sub_dst = local[graph.indices[keep]]
    counts = np.bincount(sub_src, minlength=k)
    indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # Rows stay sorted: the relabelling is monotone in original id.
    sub = Graph(indptr, sub_dst.astype(np.int32), validate=False)
    return sub, global_ids.astype(np.int32)


def degree_statistics(graph: Graph) -> dict:
    """Max / mean / median degree plus counts (Table 1 columns)."""
    degrees = graph.degree()
    if graph.num_vertices == 0:
        return {"max": 0, "mean": 0.0, "median": 0.0, "min": 0}
    return {
        "max": int(degrees.max()),
        "mean": float(degrees.mean()),
        "median": float(np.median(degrees)),
        "min": int(degrees.min()),
    }


def top_degree_vertices(graph: Graph, count: int) -> np.ndarray:
    """The ``count`` highest-degree vertices, ties broken by vertex id.

    This is the paper's landmark selection rule (§6.1): "we choose
    vertices with the largest degrees as landmarks". Deterministic
    tie-breaking keeps the labelling scheme reproducible (Lemma 5.2 is
    stated for a *fixed* landmark set).
    """
    degrees = graph.degree()
    count = min(count, graph.num_vertices)
    # argsort on (-degree, id): stable sort over ids then by degree.
    order = np.argsort(-degrees, kind="stable")
    return order[:count].astype(np.int32)


def average_distance_estimate(graph: Graph, num_sources: int = 32,
                              seed=None) -> float:
    """Estimate the mean pairwise distance by sampling BFS sources.

    Table 1's ``avg. dist`` column; exact computation is
    ``O(|V| * |E|)`` so the estimate samples sources.
    """
    n = graph.num_vertices
    if n < 2:
        return 0.0
    rng = check_random_state(seed)
    sources = rng.choice(n, size=min(num_sources, n), replace=False)
    total = 0.0
    pairs = 0
    for source in sources:
        dist = bfs_distances(graph, int(source))
        reached = dist[(dist != UNREACHED) & (dist > 0)]
        total += float(reached.sum())
        pairs += len(reached)
    return total / pairs if pairs else 0.0


def is_connected(graph: Graph) -> bool:
    """True iff the graph has exactly one connected component."""
    if graph.num_vertices <= 1:
        return True
    count, _ = connected_components(graph)
    return count == 1


def diameter_estimate(graph: Graph, num_probes: int = 8, seed=None) -> int:
    """Lower bound on the diameter via double-sweep probes."""
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = check_random_state(seed)
    best = 0
    for _ in range(num_probes):
        start = int(rng.integers(n))
        dist = bfs_distances(graph, start)
        reachable = np.nonzero(dist != UNREACHED)[0]
        far = reachable[np.argmax(dist[reachable])]
        dist2 = bfs_distances(graph, int(far))
        finite = dist2[dist2 != UNREACHED]
        if len(finite):
            best = max(best, int(finite.max()))
    return best


def density(graph: Graph) -> float:
    """Edge density ``2m / (n (n - 1))``."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def triangle_count_estimate(graph: Graph, sample: Optional[int] = None,
                            seed=None) -> int:
    """Count triangles (exactly, or scaled from a vertex sample).

    Used by workload sanity checks to confirm the clustered generators
    actually produce triangles.
    """
    n = graph.num_vertices
    rng = check_random_state(seed)
    if sample is None or sample >= n:
        vertices = np.arange(n)
        scale = 1.0
    else:
        vertices = rng.choice(n, size=sample, replace=False)
        scale = n / sample
    total = 0
    for v in vertices:
        neighbors = graph.neighbors(int(v))
        if len(neighbors) < 2:
            continue
        neighbor_set = set(int(x) for x in neighbors)
        for w in neighbors:
            if w <= v:
                continue
            for x in graph.neighbors(int(w)):
                if x > w and int(x) in neighbor_set:
                    total += 1
    return int(round(total * scale))
