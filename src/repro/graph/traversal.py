"""Vectorized breadth-first-search kernels over CSR graphs.

These kernels are the performance backbone of the whole reproduction:
labelling construction (Algorithm 2), the guided bidirectional search
(Algorithm 4) and every baseline are built out of the frontier
expansion primitive below. All of them operate on raw ``indptr`` /
``indices`` arrays so they can be reused on sparsified graphs without
re-wrapping.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import UNREACHED
from .csr import Graph

__all__ = [
    "expand_frontier",
    "bfs_distances",
    "bfs_distances_bounded",
    "bfs_distances_offsets",
    "multi_source_bfs",
    "eccentricity",
    "connected_components",
]


def expand_frontier(indptr: np.ndarray, indices: np.ndarray,
                    frontier: np.ndarray) -> np.ndarray:
    """Concatenated neighbours of every vertex in ``frontier``.

    Duplicates are *not* removed — callers filter with their own
    visited masks, which is cheaper than a sort-based unique here.
    """
    if len(frontier) == 0:
        return np.empty(0, dtype=indices.dtype)
    starts = indptr[frontier]
    ends = indptr[frontier + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # Classic vectorized multi-slice gather: positions are a single
    # arange shifted per-slice so indices[positions] pulls every row.
    shifts = np.repeat(starts - np.concatenate(([0], counts.cumsum()[:-1])),
                       counts)
    positions = np.arange(total, dtype=np.int64) + shifts
    return indices[positions]


def bfs_distances(graph: Graph, source: int,
                  out: Optional[np.ndarray] = None) -> np.ndarray:
    """Exact BFS distances from ``source`` (``UNREACHED`` where cut off)."""
    return bfs_distances_bounded(graph, source, max_depth=None, out=out)


def bfs_distances_bounded(graph: Graph, source: int,
                          max_depth: Optional[int],
                          out: Optional[np.ndarray] = None) -> np.ndarray:
    """BFS distances from ``source`` up to ``max_depth`` levels.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Start vertex.
    max_depth:
        Stop after this many levels (``None`` = traverse everything).
    out:
        Optional preallocated int32 array to fill (reused across calls
        by hot loops); it is reset to ``UNREACHED`` first.
    """
    graph._check_vertex(source)
    n = graph.num_vertices
    if out is None:
        dist = np.full(n, UNREACHED, dtype=np.int32)
    else:
        dist = out
        dist.fill(UNREACHED)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int32)
    depth = 0
    indptr, indices = graph.indptr, graph.indices
    while len(frontier):
        if max_depth is not None and depth >= max_depth:
            break
        depth += 1
        neighbors = expand_frontier(indptr, indices, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        dist[fresh] = depth  # duplicate writes of the same value are fine
        frontier = np.unique(fresh)
    return dist


def bfs_distances_offsets(graph: Graph, sources, offsets,
                          out: Optional[np.ndarray] = None) -> np.ndarray:
    """BFS distances from sources that start at integer depth offsets.

    ``dist[x] = min_i (offsets[i] + d(sources[i], x))`` — the unit-edge
    special case of Dijkstra with non-uniform source potentials,
    processed Dial-style (one bucket per depth, so the cost stays one
    ordinary BFS plus the offset range, never a heap). The sharded
    query assembly uses this to turn "distance from every boundary
    vertex" overlays into exact per-shard distance fields with a
    single sweep instead of one BFS per boundary vertex.

    ``offsets`` must be non-negative; a source may be rediscovered
    cheaper through another source, in which case its own offset is
    ignored. Returns ``UNREACHED`` where no source reaches.
    """
    n = graph.num_vertices
    source_array = np.asarray(list(sources), dtype=np.int64)
    offset_array = np.asarray(list(offsets), dtype=np.int64)
    if source_array.shape != offset_array.shape or source_array.ndim != 1:
        raise ValueError("sources and offsets must be equal-length 1-D")
    if len(offset_array) and offset_array.min() < 0:
        raise ValueError("offsets must be non-negative")
    if len(source_array) and (source_array.min() < 0
                              or source_array.max() >= n):
        graph._check_vertex(int(source_array.max())
                            if source_array.max() >= n
                            else int(source_array.min()))
    if out is None:
        dist = np.full(n, UNREACHED, dtype=np.int32)
    else:
        dist = out
        dist.fill(UNREACHED)
    if len(source_array) == 0:
        return dist
    order = np.argsort(offset_array, kind="stable")
    source_array = source_array[order]
    offset_array = offset_array[order]
    cursor = 0
    depth = int(offset_array[0])
    frontier = np.empty(0, dtype=np.int32)
    indptr, indices = graph.indptr, graph.indices
    while True:
        # Admit sources whose offset equals the current depth, unless
        # some earlier source already reached them at least as cheaply.
        while cursor < len(source_array) \
                and offset_array[cursor] == depth:
            s = int(source_array[cursor])
            cursor += 1
            if dist[s] == UNREACHED:
                dist[s] = depth
                frontier = np.append(frontier,
                                     np.int32(s))
        if len(frontier) == 0:
            if cursor >= len(source_array):
                break
            depth = int(offset_array[cursor])
            continue
        neighbors = expand_frontier(indptr, indices,
                                    frontier.astype(np.int32))
        fresh = neighbors[dist[neighbors] == UNREACHED]
        depth += 1
        if len(fresh):
            dist[fresh] = depth
            frontier = np.unique(fresh)
        else:
            frontier = np.empty(0, dtype=np.int32)
    return dist


def multi_source_bfs(graph: Graph, sources) -> np.ndarray:
    """Distances to the nearest vertex of ``sources`` (landmark cover)."""
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int32)
    frontier = np.unique(np.asarray(list(sources), dtype=np.int32))
    if len(frontier) and (frontier.min() < 0 or frontier.max() >= n):
        graph._check_vertex(int(frontier.max()))
    dist[frontier] = 0
    depth = 0
    indptr, indices = graph.indptr, graph.indices
    while len(frontier):
        depth += 1
        neighbors = expand_frontier(indptr, indices, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        dist[fresh] = depth
        frontier = np.unique(fresh)
    return dist


def eccentricity(graph: Graph, source: int) -> int:
    """Largest finite BFS distance from ``source``."""
    dist = bfs_distances(graph, source)
    reached = dist[dist != UNREACHED]
    return int(reached.max()) if len(reached) else 0


def connected_components(graph: Graph) -> Tuple[int, np.ndarray]:
    """Connected components via repeated BFS.

    Returns ``(count, labels)`` where ``labels[v]`` is a component id in
    ``[0, count)``. Deterministic: components are numbered by their
    smallest vertex.
    """
    n = graph.num_vertices
    labels = np.full(n, UNREACHED, dtype=np.int32)
    count = 0
    indptr, indices = graph.indptr, graph.indices
    for start in range(n):
        if labels[start] != UNREACHED:
            continue
        labels[start] = count
        frontier = np.array([start], dtype=np.int32)
        while len(frontier):
            neighbors = expand_frontier(indptr, indices, frontier)
            fresh = neighbors[labels[neighbors] == UNREACHED]
            if len(fresh) == 0:
                break
            labels[fresh] = count
            frontier = np.unique(fresh)
        count += 1
    return count, labels
