"""Building :class:`~repro.graph.csr.Graph` objects from edge data.

The builder is the single normalization point for the library: every
input path (python iterables, numpy arrays, files, generators) funnels
through :func:`build_graph`, which

* symmetrizes (undirected canonical form),
* drops self loops,
* collapses parallel edges,
* sorts each adjacency row,

mirroring the paper's preprocessing ("we treated graphs in these
datasets as being undirected", Table 1's ``|E_un|``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import GraphValidationError
from .csr import Graph

__all__ = ["build_graph", "edges_to_arrays", "GraphBuilder"]


def edges_to_arrays(edges) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce edge input into two equal-length int64 arrays ``(u, v)``.

    Accepts an ``(m, 2)`` array, a pair of 1-D arrays, or any iterable of
    pairs. Raises :class:`GraphValidationError` on malformed shapes.
    """
    if isinstance(edges, tuple) and len(edges) == 2 and not _is_pair(edges):
        u = np.asarray(edges[0], dtype=np.int64)
        v = np.asarray(edges[1], dtype=np.int64)
        if u.shape != v.shape:
            raise GraphValidationError("endpoint arrays differ in length")
        return u, v
    array = np.asarray(list(edges) if not isinstance(edges, np.ndarray)
                       else edges, dtype=np.int64)
    if array.size == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphValidationError(
            f"edge input must be (m, 2)-shaped, got shape {array.shape}"
        )
    return array[:, 0].copy(), array[:, 1].copy()


def _is_pair(obj) -> bool:
    """True when ``obj`` looks like a single (u, v) edge, not two arrays."""
    return all(np.isscalar(x) or getattr(x, "ndim", 1) == 0 for x in obj)


def build_graph(edges, num_vertices: Optional[int] = None) -> Graph:
    """Construct a normalized undirected :class:`Graph` from edges.

    Parameters
    ----------
    edges:
        Anything :func:`edges_to_arrays` accepts. Both orientations of an
        edge may be present; duplicates and self loops are removed.
    num_vertices:
        Total vertex count. Defaults to ``max id + 1`` over the input
        (0 for empty input).
    """
    u, v = edges_to_arrays(edges)
    if len(u) and min(u.min(), v.min()) < 0:
        raise GraphValidationError("vertex ids must be non-negative")

    inferred = int(max(u.max(), v.max())) + 1 if len(u) else 0
    n = inferred if num_vertices is None else int(num_vertices)
    if n < inferred:
        raise GraphValidationError(
            f"num_vertices={n} is too small for max vertex id {inferred - 1}"
        )

    # Drop self loops, then symmetrize and dedupe via a packed key sort.
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    if len(lo):
        key = lo * np.int64(n) + hi
        key = np.unique(key)
        lo = (key // n).astype(np.int32)
        hi = (key % n).astype(np.int32)
    else:
        lo = lo.astype(np.int32)
        hi = hi.astype(np.int32)

    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]

    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Graph(indptr, dst.astype(np.int32), validate=False)


class GraphBuilder:
    """Incremental edge accumulator for streaming construction.

    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1).add_edge(1, 2)           # doctest: +ELLIPSIS
    <repro.graph.builder.GraphBuilder object at ...>
    >>> b.build().num_edges
    2
    """

    def __init__(self, num_vertices: Optional[int] = None) -> None:
        self._sources: list = []
        self._targets: list = []
        self._num_vertices = num_vertices

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Queue one edge; normalization happens at :meth:`build`."""
        self._sources.append(int(u))
        self._targets.append(int(v))
        return self

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> "GraphBuilder":
        """Queue many edges."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def add_path(self, vertices: Iterable[int]) -> "GraphBuilder":
        """Queue consecutive edges along ``vertices``."""
        previous = None
        for vertex in vertices:
            if previous is not None:
                self.add_edge(previous, vertex)
            previous = vertex
        return self

    def add_cycle(self, vertices) -> "GraphBuilder":
        """Queue a closed cycle through ``vertices``."""
        vertices = list(vertices)
        self.add_path(vertices)
        if len(vertices) > 2:
            self.add_edge(vertices[-1], vertices[0])
        return self

    def add_clique(self, vertices) -> "GraphBuilder":
        """Queue all pairwise edges among ``vertices``."""
        vertices = list(vertices)
        for i, a in enumerate(vertices):
            for b in vertices[i + 1:]:
                self.add_edge(a, b)
        return self

    @property
    def num_queued(self) -> int:
        return len(self._sources)

    def build(self) -> Graph:
        """Materialize the accumulated edges as a normalized graph."""
        edges = (np.asarray(self._sources, dtype=np.int64),
                 np.asarray(self._targets, dtype=np.int64))
        return build_graph(edges, num_vertices=self._num_vertices)
