"""Immutable compressed-sparse-row (CSR) graph.

This is the substrate every other subsystem builds on. A
:class:`Graph` stores an unweighted, undirected simple graph as two
numpy arrays:

* ``indptr``  — ``int64`` array of length ``n + 1``; the neighbours of
  vertex ``v`` live in ``indices[indptr[v]:indptr[v + 1]]``.
* ``indices`` — ``int32`` array of length ``2 * m`` (each undirected
  edge appears in both endpoint rows), sorted within each row.

The paper treats all twelve datasets as undirected (Table 1 reports
``|E_un|``), so the canonical in-memory form here is undirected and
deduplicated; directed inputs are symmetrized by the builder.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphValidationError, VertexError

__all__ = ["Graph"]


class Graph:
    """Unweighted undirected simple graph in CSR form.

    Instances are immutable: all mutation-style operations return new
    graphs. Construct via :meth:`from_edges` /
    :func:`repro.graph.builder.build_graph`, or from raw CSR arrays
    when they are already validated.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *,
                 validate: bool = True) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if validate:
            _validate_csr(indptr, indices)
        self._indptr = indptr
        self._indices = indices
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]],
                   num_vertices: Optional[int] = None) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Self loops are dropped and parallel edges collapsed; the pairs
        may mention each edge in either or both orientations. When
        ``num_vertices`` is omitted it is inferred as ``max id + 1``.
        """
        from .builder import build_graph

        return build_graph(edges, num_vertices=num_vertices)

    @classmethod
    def empty(cls, num_vertices: int) -> "Graph":
        """An edgeless graph on ``num_vertices`` vertices."""
        if num_vertices < 0:
            raise GraphValidationError("num_vertices must be >= 0")
        return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int32), validate=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """Row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Concatenated adjacency array (read-only view)."""
        return self._indices

    @property
    def num_vertices(self) -> int:
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._indices) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored arcs (twice :attr:`num_edges`)."""
        return len(self._indices)

    def degree(self, v: Optional[int] = None):
        """Degree of ``v``, or the full degree array when ``v is None``."""
        if v is None:
            return np.diff(self._indptr)
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (read-only array view)."""
        self._check_vertex(v)
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int32),
                        np.diff(self._indptr))
        mask = src < self._indices
        return np.column_stack((src[mask], self._indices[mask]))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def remove_vertices(self, vertices: Sequence[int]) -> "Graph":
        """Graph with ``vertices`` (and their incident edges) removed.

        Vertex ids are preserved — removed vertices remain as isolated
        ids so labels and depth arrays stay aligned with the original
        graph. This is exactly the sparsified graph ``G⁻ = G[V \\ R]``
        of Section 4.3 in the paper.
        """
        n = self.num_vertices
        drop = np.zeros(n, dtype=bool)
        vertex_array = np.asarray(list(vertices), dtype=np.int64)
        if len(vertex_array) and (vertex_array.min() < 0
                                  or vertex_array.max() >= n):
            bad = vertex_array[(vertex_array < 0) | (vertex_array >= n)][0]
            raise VertexError(int(bad), n)
        drop[vertex_array] = True

        keep_arc = ~drop[self._indices]
        src = np.repeat(np.arange(n, dtype=np.int32),
                        np.diff(self._indptr))
        keep_arc &= ~drop[src]

        new_indices = self._indices[keep_arc]
        counts = np.bincount(src[keep_arc], minlength=n)
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        return Graph(new_indptr, new_indices, validate=False)

    def subgraph_edges(self, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """Graph on the same vertex set containing only ``edges``."""
        from .builder import build_graph

        return build_graph(edges, num_vertices=self.num_vertices)

    # ------------------------------------------------------------------
    # Size accounting (paper Table 1 column |G|)
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Bytes of the CSR arrays actually held in memory."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    def paper_size_bytes(self) -> int:
        """Size under the paper's model: 8 bytes per stored arc.

        Table 1 reports ``|G|`` as "each edge appearing in the adjacency
        lists and being represented by 8 bytes".
        """
        return 8 * self.num_directed_edges

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexError(v, self.num_vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (np.array_equal(self._indptr, other._indptr)
                and np.array_equal(self._indices, other._indices))

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return object.__hash__(self)

    def __repr__(self) -> str:
        return (f"Graph(num_vertices={self.num_vertices}, "
                f"num_edges={self.num_edges})")


def _validate_csr(indptr: np.ndarray, indices: np.ndarray) -> None:
    """Check CSR structural invariants, raising GraphValidationError."""
    if indptr.ndim != 1 or len(indptr) < 1:
        raise GraphValidationError("indptr must be a 1-D array of length >= 1")
    if indptr[0] != 0:
        raise GraphValidationError("indptr must start at 0")
    if indptr[-1] != len(indices):
        raise GraphValidationError(
            f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
            f"({len(indices)})"
        )
    if np.any(np.diff(indptr) < 0):
        raise GraphValidationError("indptr must be non-decreasing")
    n = len(indptr) - 1
    if len(indices) and (indices.min() < 0 or indices.max() >= n):
        raise GraphValidationError("adjacency index out of range")
    if len(indices) == 0:
        return
    # Rows must be strictly sorted (no duplicates) and self-loop free.
    # Vectorized: adjacent differences must be positive except where the
    # pair straddles a row boundary.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    if np.any(indices == src):
        raise GraphValidationError("graph contains a self loop")
    if len(indices) > 1:
        same_row = src[1:] == src[:-1]
        bad = same_row & (np.diff(indices.astype(np.int64)) <= 0)
        if np.any(bad):
            raise GraphValidationError(
                "adjacency rows must be strictly sorted (duplicate edge?)"
            )
