"""Size accounting under the paper's cost models (Tables 1 & 3, Fig 9).

The paper counts bytes with explicit conventions:

* graphs: 8 bytes per stored arc (Table 1's ``|G|``);
* QbS labels: ``|R| * 8`` bits per vertex (§6.1);
* QbS Δ: the precomputed inter-landmark shortest path graphs;
* meta-graph: negligible (< 0.01 MB even at ``|R| = 100``);
* PPL labels: 32-bit landmark + 8-bit distance per entry;
* ParentPPL: PPL plus 32 bits per stored parent.

These helpers return byte counts under those models so the harness can
print rows directly comparable with the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..baselines.parent_ppl import ParentPPLIndex
from ..baselines.ppl import PPLIndex
from ..core.qbs import QbSIndex
from ..graph.csr import Graph
from ..graph.ops import average_distance_estimate, degree_statistics

__all__ = ["QbSSizeReport", "qbs_size_report", "ppl_size_bytes",
           "parent_ppl_size_bytes", "dataset_statistics"]


@dataclass
class QbSSizeReport:
    """Table 3 row for QbS: size(L) and size(Δ) plus the meta-graph."""

    label_bytes: int
    delta_bytes: int
    meta_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.label_bytes + self.delta_bytes + self.meta_bytes


def qbs_size_report(index: QbSIndex) -> QbSSizeReport:
    """Size accounting for a built QbS index."""
    return QbSSizeReport(
        label_bytes=index.labelling.paper_size_bytes(),
        delta_bytes=index.meta_graph.delta_total_edges() * 8,
        meta_bytes=index.meta_graph.paper_size_bytes(),
    )


def ppl_size_bytes(index: PPLIndex) -> int:
    """Table 3's PPL column under the 5-bytes-per-entry model."""
    return index.paper_size_bytes()


def parent_ppl_size_bytes(index: ParentPPLIndex) -> int:
    """Table 3's ParentPPL column (entries + parent slots)."""
    return index.paper_size_bytes()


def dataset_statistics(graph: Graph, seed: int = 0,
                       avg_dist_sources: int = 24) -> dict:
    """One Table 1 row for a graph.

    ``|E_un|`` equals ``|E|`` here because the canonical in-memory form
    is already undirected and deduplicated (the paper's preprocessing).
    """
    stats = degree_statistics(graph)
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_edges_undirected": graph.num_edges,
        "max_degree": stats["max"],
        "avg_degree": stats["mean"],
        "avg_distance": average_distance_estimate(
            graph, num_sources=avg_dist_sources, seed=seed
        ),
        "size_bytes": graph.paper_size_bytes(),
    }
