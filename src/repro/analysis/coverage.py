"""Pair-coverage analysis (Figure 8).

For a query pair the sketch can only guide the search if at least one
shortest path passes through a landmark. The paper distinguishes:

* **case (i)** — *all* shortest paths pass through a landmark
  (``d_{G⁻}(u,v) > d_top``): the whole answer comes from the recover
  search;
* **case (ii)** — *some but not all* do (``d_{G⁻}(u,v) == d_top``):
  reverse and recover both contribute;
* **uncovered** — no shortest path touches a landmark
  (``d_{G⁻} < d_top``): the sketch only bounds the search.

The ratios of cases (i) and (ii) over a sampled workload are exactly
the light/grey bars of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..core.qbs import QbSIndex

__all__ = ["CoverageReport", "pair_coverage"]


@dataclass
class CoverageReport:
    """Coverage counts over one workload (Figure 8 bars)."""

    total: int = 0
    all_through_landmarks: int = 0      # case (i)
    some_through_landmarks: int = 0     # case (ii)
    uncovered: int = 0                  # sketch cannot guide
    disconnected: int = 0
    landmark_endpoint: int = 0          # answered by fallback, skipped

    @property
    def full_ratio(self) -> float:
        """Case (i) fraction (light bars in Figure 8)."""
        return self.all_through_landmarks / self.total if self.total else 0.0

    @property
    def partial_ratio(self) -> float:
        """Case (ii) fraction (grey bars in Figure 8)."""
        return (self.some_through_landmarks / self.total
                if self.total else 0.0)

    @property
    def covered_ratio(self) -> float:
        """Cases (i)+(ii): the paper's overall pair coverage ratio."""
        return self.full_ratio + self.partial_ratio


def pair_coverage(index: QbSIndex,
                  pairs: Iterable[Tuple[int, int]]) -> CoverageReport:
    """Classify each query pair by how landmarks cover its paths.

    Uses the search instrumentation: ``d_top`` (sketch bound) versus
    ``d_minus`` (distance in the sparsified graph, ``None`` when the
    bounded bidirectional search found no landmark-free route).
    """
    report = CoverageReport()
    labelling = index.labelling
    for u, v in pairs:
        if u == v:
            continue
        report.total += 1
        if labelling.is_landmark(u) or labelling.is_landmark(v):
            # Trivially covered (an endpoint *is* a landmark); counted
            # separately because the sketch machinery is bypassed.
            report.landmark_endpoint += 1
            report.all_through_landmarks += 1
            continue
        spg, stats = index.query_with_stats(u, v)
        if spg.distance is None:
            report.total -= 1
            report.disconnected += 1
            continue
        covered = stats.d_top is not None and stats.d_top == spg.distance
        landmark_free = (stats.d_minus is not None
                         and stats.d_minus == spg.distance)
        if covered and not landmark_free:
            report.all_through_landmarks += 1
        elif covered and landmark_free:
            report.some_through_landmarks += 1
        else:
            report.uncovered += 1
    return report
