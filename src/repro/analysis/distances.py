"""Distance-distribution analysis (Figure 7).

The paper plots, per dataset, the fraction of 10,000 random vertex
pairs at each distance — showing complex networks concentrate in the
2-9 range, which is why uint8 labels and small sketches suffice.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from .._util import UNREACHED
from ..graph.csr import Graph
from ..graph.traversal import bfs_distances

__all__ = ["pair_distances", "distance_distribution", "DistanceHistogram"]


class DistanceHistogram:
    """Fractions of pairs per distance, plus disconnected count."""

    def __init__(self, counts: Counter, disconnected: int,
                 total: int) -> None:
        self.counts = dict(sorted(counts.items()))
        self.disconnected = disconnected
        self.total = total

    def fraction(self, distance: int) -> float:
        """Fraction of sampled pairs at exactly ``distance``."""
        if self.total == 0:
            return 0.0
        return self.counts.get(distance, 0) / self.total

    def fractions(self) -> Dict[int, float]:
        """The full Figure 7 series: distance -> fraction of pairs."""
        return {d: c / self.total for d, c in self.counts.items()}

    def mean(self) -> float:
        """Mean distance over connected pairs (Table 1's avg. dist)."""
        connected = self.total - self.disconnected
        if connected == 0:
            return 0.0
        return sum(d * c for d, c in self.counts.items()) / connected

    def mode(self) -> Optional[int]:
        """Most common distance (the Figure 7 peak)."""
        if not self.counts:
            return None
        return max(self.counts, key=self.counts.get)

    def max_distance(self) -> int:
        return max(self.counts, default=0)


def pair_distances(graph: Graph,
                   pairs: Iterable[Tuple[int, int]]) -> List[Optional[int]]:
    """Exact distances for the given pairs.

    Groups pairs by source so each distinct source costs one BFS —
    much cheaper than a BFS per pair on dense workloads.
    """
    by_source: Dict[int, List[Tuple[int, int]]] = {}
    pair_list = list(pairs)
    for idx, (u, v) in enumerate(pair_list):
        by_source.setdefault(u, []).append((idx, v))
    results: List[Optional[int]] = [None] * len(pair_list)
    for source, wanted in by_source.items():
        dist = bfs_distances(graph, source)
        for idx, v in wanted:
            d = int(dist[v])
            results[idx] = None if d == UNREACHED else d
    return results


def distance_distribution(graph: Graph,
                          pairs: Iterable[Tuple[int, int]]
                          ) -> DistanceHistogram:
    """Figure 7: histogram of pair distances for a sampled workload."""
    distances = pair_distances(graph, pairs)
    counts: Counter = Counter()
    disconnected = 0
    for d in distances:
        if d is None:
            disconnected += 1
        else:
            counts[d] += 1
    return DistanceHistogram(counts, disconnected, len(distances))
