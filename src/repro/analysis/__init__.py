"""Analysis helpers feeding the paper's figures and tables."""

from .coverage import CoverageReport, pair_coverage
from .distances import (
    DistanceHistogram,
    distance_distribution,
    pair_distances,
)
from .sizes import (
    QbSSizeReport,
    dataset_statistics,
    parent_ppl_size_bytes,
    ppl_size_bytes,
    qbs_size_report,
)

__all__ = [
    "pair_coverage",
    "CoverageReport",
    "distance_distribution",
    "pair_distances",
    "DistanceHistogram",
    "qbs_size_report",
    "QbSSizeReport",
    "ppl_size_bytes",
    "parent_ppl_size_bytes",
    "dataset_statistics",
]
