"""Naive full path labelling (§3.2 first paragraph).

One full BFS per vertex, storing all pairwise distances:
``L(v) = {(u, δ_vu) | u ∈ V}``. Construction is ``O(|V||E|)`` time and
``O(|V|^2)`` space — the paper introduces it only to motivate pruning,
and we keep it for small-graph sanity comparisons (it doubles as an
independent distance oracle in tests).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import UNREACHED, TimeBudget
from ..core.spg import ShortestPathGraph
from ..errors import BudgetExceededError
from ..graph.csr import Graph
from ..graph.traversal import bfs_distances
from .oracle import spg_edges_from_distances

__all__ = ["NaiveLabelling"]


class NaiveLabelling:
    """Dense all-pairs distance matrix built by |V| BFSs."""

    #: Guard against accidentally building a quadratic matrix on a
    #: large graph (the paper's point, enforced).
    MAX_VERTICES = 20_000

    def __init__(self, graph: Graph, matrix: np.ndarray) -> None:
        self._graph = graph
        self._matrix = matrix

    @classmethod
    def build(cls, graph: Graph,
              budget: Optional[TimeBudget] = None) -> "NaiveLabelling":
        n = graph.num_vertices
        if n > cls.MAX_VERTICES:
            raise BudgetExceededError(
                f"naive labelling needs a {n}x{n} matrix; refusing "
                f"(limit {cls.MAX_VERTICES} vertices)", kind="memory",
            )
        matrix = np.empty((n, n), dtype=np.int32)
        for v in range(n):
            if budget is not None and v % 64 == 0:
                budget.check()
            bfs_distances(graph, v, out=matrix[v])
        return cls(graph, matrix)

    def distance(self, u: int, v: int) -> Optional[int]:
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        d = int(self._matrix[u, v])
        return None if d == UNREACHED else d

    def query(self, u: int, v: int) -> ShortestPathGraph:
        """SPG directly from the stored distance rows."""
        if u == v:
            return ShortestPathGraph.trivial(u)
        distance = self.distance(u, v)
        if distance is None:
            return ShortestPathGraph.empty(u, v)
        edge_array = spg_edges_from_distances(
            self._graph, self._matrix[u], self._matrix[v], distance
        )
        return ShortestPathGraph(u, v, distance,
                                 map(tuple, edge_array.tolist()))

    def num_entries(self) -> int:
        """Label entries (finite distances) — size(L) accounting."""
        return int(np.count_nonzero(self._matrix != UNREACHED))

    def paper_size_bytes(self) -> int:
        return self.num_entries() * 5
