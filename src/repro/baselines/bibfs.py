"""Bi-BFS — the search-based baseline of Table 2.

A thin, stable-named wrapper over the shared bidirectional machinery in
:mod:`repro.core.search`: alternating level expansion from both
endpoints on the *full* graph (no labelling, no sparsification, no
sketch bound), followed by the reverse search that extracts the SPG.
The paper reports QbS answering queries 10-300x faster than this
method; the gap is what Figures 10-11 and §6.5 decompose.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.search import SearchStats, bidirectional_spg
from ..core.spg import ShortestPathGraph
from ..graph.csr import Graph

__all__ = ["BiBFS"]


class BiBFS:
    """Online bidirectional-BFS query answerer (no precomputation)."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def query(self, u: int, v: int) -> ShortestPathGraph:
        """Exact ``SPG(u, v)`` via bidirectional BFS + reverse search."""
        return bidirectional_spg(self._graph, u, v)

    def query_with_stats(self, u: int, v: int
                         ) -> Tuple[ShortestPathGraph, SearchStats]:
        """Query with traversal counters (for the §6.5 comparison)."""
        stats = SearchStats()
        spg = bidirectional_spg(self._graph, u, v, stats)
        return spg, stats

    def distance(self, u: int, v: int) -> Optional[int]:
        return self.query(u, v).distance
