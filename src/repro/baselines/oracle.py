"""Ground-truth SPG computation by double BFS.

This is the "straightforward solution" of the paper's introduction —
compute all shortest paths on the fly with BFS — reformulated as an
edge predicate so it never enumerates paths:

    edge (x, y) lies on a shortest u-v path
        iff dist_u[x] + 1 + dist_v[y] == d(u, v)   (for some orientation)

Two full BFS passes over ``G`` give both distance arrays; a single
vectorized pass over the arc array extracts the SPG edge set. It is
``O(|V| + |E|)``, obviously correct, and therefore the test oracle for
QbS and every other method in the library.
"""

from __future__ import annotations

import numpy as np

from .._util import UNREACHED
from ..core.spg import ShortestPathGraph
from ..graph.csr import Graph
from ..graph.traversal import bfs_distances

__all__ = ["spg_oracle", "spg_edges_from_distances", "distance_oracle"]


def distance_oracle(graph: Graph, u: int, v: int):
    """Exact ``d(u, v)`` by BFS, ``None`` if disconnected."""
    dist = bfs_distances(graph, u)
    d = int(dist[v])
    return None if d == UNREACHED else d


def spg_edges_from_distances(graph: Graph, dist_u: np.ndarray,
                             dist_v: np.ndarray, distance: int) -> np.ndarray:
    """Vectorized SPG edge extraction from two exact distance arrays.

    Returns an ``(k, 2)`` array of undirected edges ``(x, y)`` with
    ``dist_u[x] + 1 + dist_v[y] == distance`` — i.e. the edge is crossed
    in the ``u -> v`` direction by some shortest path.
    """
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int32), np.diff(graph.indptr))
    dst = graph.indices
    reach = (dist_u[src] != UNREACHED) & (dist_v[dst] != UNREACHED)
    on_path = reach & (dist_u[src] + 1 + dist_v[dst] == distance)
    return np.column_stack((src[on_path], dst[on_path]))


def spg_oracle(graph: Graph, u: int, v: int) -> ShortestPathGraph:
    """Exact shortest path graph between ``u`` and ``v`` (ground truth)."""
    graph._check_vertex(u)
    graph._check_vertex(v)
    if u == v:
        return ShortestPathGraph.trivial(u)
    dist_u = bfs_distances(graph, u)
    if dist_u[v] == UNREACHED:
        return ShortestPathGraph.empty(u, v)
    distance = int(dist_u[v])
    dist_v = bfs_distances(graph, v)
    edge_array = spg_edges_from_distances(graph, dist_u, dist_v, distance)
    edges = map(tuple, edge_array.tolist())
    return ShortestPathGraph(u, v, distance, edges)
