"""Baseline methods: the comparison points of Table 2 plus the oracle."""

from .bibfs import BiBFS
from .naive import NaiveLabelling
from .oracle import distance_oracle, spg_oracle
from .parent_ppl import ParentPPLIndex
from .ppl import PPLIndex

__all__ = [
    "spg_oracle",
    "distance_oracle",
    "BiBFS",
    "PPLIndex",
    "ParentPPLIndex",
    "NaiveLabelling",
]
