"""ParentPPL — pruned path labelling with parent sets (§3.2).

Each label entry is a triple ``(r, δ_vr, W_vr)`` where ``W_vr`` holds
the *parent* vertices of ``v`` towards landmark ``r`` (all neighbours
at recorded depth ``δ_vr - 1`` in the pruned BFS from ``r``). The paper
stores parents on the vertex side (not the landmark side) because
landmarks have high degree.

Query note (reproduction deviation, documented in DESIGN.md): with
*pruned* labels, parent sets can be incomplete for shortest paths whose
vertices were discovered late in the pruned BFS — those paths are
covered by earlier landmarks via the 2-hop path cover instead. A
parent-walk alone is therefore not exact. Our query walks parents
*and* performs the common-landmark split, taking the union; this keeps
ParentPPL exact at the cost of some of the query-time advantage the
paper reports on the two smallest datasets. The construction-side
behaviour the paper emphasizes (roughly 2x label size, slower builds,
earlier OOM/DNF walls — Tables 2 and 3) is preserved.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._util import TimeBudget
from ..core.build_kernels import (ParentsView, RaggedView,
                                  build_sound_labels)
from ..core.spg import ShortestPathGraph
from ..errors import IndexBuildError
from ..graph.csr import Graph

__all__ = ["ParentPPLIndex"]

Edge = Tuple[int, int]
INF = float("inf")


def _norm(a: int, b: int) -> Edge:
    return (a, b) if a <= b else (b, a)


def _merge_min(ranks_a: Sequence[int], dists_a: Sequence[int],
               ranks_b: Sequence[int], dists_b: Sequence[int]) -> float:
    """2-hop distance query by merge-join on rank-sorted label lists."""
    best = INF
    i = j = 0
    len_a, len_b = len(ranks_a), len(ranks_b)
    while i < len_a and j < len_b:
        ra, rb = ranks_a[i], ranks_b[j]
        if ra == rb:
            total = dists_a[i] + dists_b[j]
            if total < best:
                best = total
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best


class ParentPPLIndex:
    """PPL labels augmented with per-entry parent sets.

    Like :class:`~repro.baselines.ppl.PPLIndex`, the query paths only
    ``len()`` and integer-index the label containers (including the
    per-entry parent rows, whose items must be iterables of parent
    vertices), so the constructor accepts any sequence-of-sequences;
    :mod:`repro.store` passes lazy store-backed rows here.
    """

    def __init__(self, graph: Graph, order: np.ndarray,
                 label_ranks: Sequence[Sequence[int]],
                 label_dists: Sequence[Sequence[int]],
                 label_parents: Sequence[Sequence[Tuple[int, ...]]]
                 ) -> None:
        self._graph = graph
        self._order = order
        self._label_ranks = label_ranks
        self._label_dists = label_dists
        self._label_parents = label_parents

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: Graph,
              budget: Optional[TimeBudget] = None,
              variant: str = "sound",
              jobs: Optional[int] = None) -> "ParentPPLIndex":
        """Sound PPL labelling, additionally recording parent sets.

        Uses the corrected label rule of
        :class:`~repro.baselines.ppl.PPLIndex` (see that module's
        docstring for why Algorithm 1's own rule is unsound). Each
        labelled vertex stores *all* its parents on shortest paths to
        the landmark — the neighbourhood scan is what makes ParentPPL
        slower to build than PPL ("finding all parents takes more
        time", §6.2.1) and the parent sets are what roughly double its
        size (Table 3).

        The default ``"sound"`` variant runs the same bit-parallel
        batched kernel as PPL with parent collection switched on
        (parents fall out of the previous level's full-BFS frontier,
        no per-vertex neighbourhood rescan); ``"sound-scalar"`` keeps
        the per-root reference loop.
        """
        if variant not in ("sound", "sound-scalar"):
            raise IndexBuildError(
                f"unknown ParentPPL variant {variant!r}")
        n = graph.num_vertices
        degrees = graph.degree()
        order = np.argsort(-degrees, kind="stable").astype(np.int64)

        if variant == "sound":
            flat = build_sound_labels(graph, order, jobs=jobs,
                                      budget=budget, with_parents=True)
            offsets = flat["label_offsets"]
            index = cls(
                graph, order,
                RaggedView(offsets, flat["label_ranks"]),
                RaggedView(offsets, flat["label_dists"]),
                ParentsView(offsets, flat["parent_offsets"],
                            flat["parents"]))
            index._flat_labels = flat
            return index

        from .ppl import restricted_bfs

        rank_of = np.empty(n, dtype=np.int64)
        rank_of[order] = np.arange(n)

        label_ranks: List[List[int]] = [[] for _ in range(n)]
        label_dists: List[List[int]] = [[] for _ in range(n)]
        label_parents: List[List[Tuple[int, ...]]] = [[] for _ in range(n)]

        from ..graph.traversal import bfs_distances

        full = np.empty(n, dtype=np.int32)
        restricted = np.empty(n, dtype=np.int32)
        index = cls(graph, order, label_ranks, label_dists, label_parents)
        for rank in range(n):
            if budget is not None and rank % 16 == 0:
                budget.check()
            root = int(order[rank])
            bfs_distances(graph, root, out=full)
            restricted_bfs(graph, root, rank_of, rank, out=restricted)
            labelled = np.nonzero(
                (restricted != -1) & (restricted == full)
            )[0]
            for u in labelled.tolist():
                d = int(full[u])
                parents = tuple(
                    int(w) for w in graph.neighbors(u)
                    if full[w] == d - 1
                ) if d else ()
                label_ranks[u].append(rank)
                label_dists[u].append(d)
                label_parents[u].append(parents)
        return index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact distance from the labels (``None`` when disconnected)."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return 0
        best = _merge_min(self._label_ranks[u], self._label_dists[u],
                          self._label_ranks[v], self._label_dists[v])
        return None if best == INF else int(best)

    def query(self, u: int, v: int) -> ShortestPathGraph:
        """Answer ``SPG(u, v)`` using parents plus label splitting."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return ShortestPathGraph.trivial(u)
        distance = self.distance(u, v)
        if distance is None:
            return ShortestPathGraph.empty(u, v)
        memo: Dict[Edge, FrozenSet[Edge]] = {}
        edges = self._resolve(u, v, distance, memo)
        return ShortestPathGraph(u, v, distance, edges)

    def _resolve(self, a: int, b: int, distance: int,
                 memo: Dict[Edge, FrozenSet[Edge]]) -> FrozenSet[Edge]:
        key = _norm(a, b)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if distance == 0:
            memo[key] = frozenset()
            return memo[key]
        if distance == 1:
            memo[key] = frozenset({key})
            return memo[key]
        edges: Set[Edge] = set()
        # Parent walks towards whichever endpoint is the landmark of a
        # stored entry (possible when rank(other) < rank(self)).
        edges |= self._parent_walk(a, b, distance)
        edges |= self._parent_walk(b, a, distance)
        # Exactness: split at all interior minimal common landmarks.
        for r, d_ar, d_br in self._common_minimal(a, b, distance):
            if r == a or r == b:
                continue
            edges |= self._resolve(a, r, d_ar, memo)
            edges |= self._resolve(b, r, d_br, memo)
        result = frozenset(edges)
        memo[key] = result
        return result

    def _parent_walk(self, start: int, landmark_vertex: int,
                     distance: int) -> Set[Edge]:
        """Follow parent sets from ``start`` down to ``landmark_vertex``.

        Emits the edges of every shortest path whose vertices the
        pruned BFS from the landmark discovered at exact depth.
        """
        # Find the landmark's rank once (order lookup is O(1) via scan
        # of start's label, which is sorted by rank).
        target_rank = self._rank_lookup(landmark_vertex)
        entry = self._entry_for(start, target_rank)
        if entry is None or entry[0] != distance:
            return set()
        edges: Set[Edge] = set()
        frontier = {start}
        level = distance
        seen: Set[int] = set()
        while frontier and level > 0:
            next_frontier: Set[int] = set()
            for x in frontier:
                if x in seen:
                    continue
                seen.add(x)
                x_entry = self._entry_for(x, target_rank)
                if x_entry is None or x_entry[0] != level:
                    continue
                for w in x_entry[1]:
                    edges.add(_norm(x, w))
                    next_frontier.add(w)
            frontier = next_frontier
            level -= 1
        return edges

    def _rank_lookup(self, vertex: int) -> int:
        # order maps rank -> vertex; build the inverse lazily.
        if not hasattr(self, "_rank_of"):
            rank_of = np.empty(len(self._order), dtype=np.int64)
            rank_of[self._order] = np.arange(len(self._order))
            self._rank_of = rank_of
        return int(self._rank_of[vertex])

    def _entry_for(self, vertex: int, rank: int):
        """Return ``(distance, parents)`` of the entry for ``rank``."""
        ranks = self._label_ranks[vertex]
        import bisect

        i = bisect.bisect_left(ranks, rank)
        if i < len(ranks) and ranks[i] == rank:
            return self._label_dists[vertex][i], self._label_parents[vertex][i]
        return None

    def _common_minimal(self, a: int, b: int, distance: int):
        ranks_a, dists_a = self._label_ranks[a], self._label_dists[a]
        ranks_b, dists_b = self._label_ranks[b], self._label_dists[b]
        i = j = 0
        while i < len(ranks_a) and j < len(ranks_b):
            ra, rb = ranks_a[i], ranks_b[j]
            if ra == rb:
                if dists_a[i] + dists_b[j] == distance:
                    yield int(self._order[ra]), dists_a[i], dists_b[j]
                i += 1
                j += 1
            elif ra < rb:
                i += 1
            else:
                j += 1

    # ------------------------------------------------------------------
    # Size accounting (Table 3)
    # ------------------------------------------------------------------

    def num_entries(self) -> int:
        return sum(len(ranks) for ranks in self._label_ranks)

    def num_parent_slots(self) -> int:
        """Total stored parent vertices across all entries."""
        return sum(len(parents) for per_vertex in self._label_parents
                   for parents in per_vertex)

    def paper_size_bytes(self) -> int:
        """Paper model: 32-bit landmark + 8-bit distance + 32-bit/parent."""
        return self.num_entries() * 5 + self.num_parent_slots() * 4

    @property
    def order(self) -> np.ndarray:
        return self._order
