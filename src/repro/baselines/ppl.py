"""Pruned Path Labelling (PPL) — Section 3.2, Algorithm 1.

PPL adapts Pruned Landmark Labelling (Akiba et al., SIGMOD 2013) to the
shortest-path-*graph* problem: every vertex is a landmark, processed in
descending degree order, and labels must form a 2-hop **path** cover
(Definition 3.2) so the recursive query can split every shortest path
at a common interior landmark.

Reproduction finding (documented in DESIGN.md and exercised by
``tests/test_ppl.py::test_paper_algorithm1_counterexample``): the
pruning rule of the paper's Algorithm 1 — keep the label on
``d_L == depth`` but stop expanding — does **not** guarantee a 2-hop
path cover. Stopping expansion can leave a vertex undiscovered at its
true depth in a later-relevant BFS, so the final labels can miss the
interior landmark some shortest path needs, and the recursive query
silently drops paths. This module therefore provides two variants:

* ``variant="sound"`` (default) — a corrected labelling with the rule

      label (r, u)  iff  some shortest r-u path has every *interior*
      vertex ranked strictly below r,

  computed per landmark with one full BFS (exact distances) plus one
  rank-restricted BFS (distances using only lower-ranked interiors);
  ``u`` is labelled iff the two agree. This is a 2-hop path cover:
  for any pair ``(u, v)`` and any shortest path ``p`` with
  ``|p| >= 2``, the maximum-ranked interior vertex ``r`` of ``p``
  satisfies the rule for both ``u`` and ``v`` (the sub-paths' interiors
  are interiors of ``p``, hence outranked by ``r``), so ``r`` is a
  common label landmark lying on ``p``. Construction stays
  ``O(|V| |E|)`` and the label sets remain PPL-sized.

* ``variant="paper"`` — Algorithm 1 exactly as printed, kept for the
  counterexample and for construction-cost comparisons.

Either way PPL is the labelling-based baseline of Table 2, expected to
lose to QbS by orders of magnitude at scale.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._util import UNREACHED, TimeBudget
from ..core.build_kernels import (RaggedView, build_sound_labels,
                                  restricted_distances)
from ..core.spg import ShortestPathGraph
from ..errors import IndexBuildError
from ..graph.csr import Graph
from ..graph.traversal import bfs_distances, expand_frontier

__all__ = ["PPLIndex", "restricted_bfs"]

Edge = Tuple[int, int]

INF = float("inf")


def _norm(a: int, b: int) -> Edge:
    return (a, b) if a <= b else (b, a)


def restricted_bfs(graph: Graph, root: int, rank_of: np.ndarray,
                   root_rank: int,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """BFS distances from ``root`` through lower-ranked interiors only.

    A vertex may appear *on the frontier* (be discovered) regardless of
    rank, but only vertices ranked strictly below ``root_rank`` (i.e.
    with a larger rank number) are expanded. The result is, for every
    ``u``, the length of the shortest ``root``-``u`` path whose interior
    vertices are all outranked by the root — or ``UNREACHED``.

    This is the rank instantiation of the shared prune primitive
    :func:`~repro.core.build_kernels.restricted_distances`; the QbS
    labelling instantiates the same primitive with the landmark-
    avoiding allowed set, so the two constructions can no longer drift.
    """
    return restricted_distances(graph.indptr, graph.indices, root,
                                rank_of > root_rank, out=out)


class PPLIndex:
    """Pruned path labelling over one graph.

    Labels are stored per vertex as parallel rank/distance lists sorted
    by landmark rank, enabling merge-join distance queries. ``rank`` is
    the position in the degree-descending landmark order; vertex ids
    are recovered through ``order``.

    Label-container contract: the query paths only ever take ``len()``
    and integer-index the per-vertex rows — they never mutate them
    (mutation happens solely during :meth:`build`, on lists it created
    itself). Constructors therefore accept any sequence-of-sequences;
    :mod:`repro.store` exploits this by passing lazy rows that fault
    label windows in from a packed on-disk store on first touch.
    """

    def __init__(self, graph: Graph, order: np.ndarray,
                 label_ranks: Sequence[Sequence[int]],
                 label_dists: Sequence[Sequence[int]]) -> None:
        self._graph = graph
        self._order = order
        self._label_ranks = label_ranks
        self._label_dists = label_dists

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: Graph, budget: Optional[TimeBudget] = None,
              variant: str = "sound",
              jobs: Optional[int] = None) -> "PPLIndex":
        """Build labels from every vertex in degree-descending order.

        ``budget`` emulates the paper's 24-hour wall: construction
        aborts with :class:`~repro.errors.BudgetExceededError` when
        exceeded, which the harness reports as DNF.

        The default ``"sound"`` variant runs the bit-parallel batched
        kernel of :mod:`repro.core.build_kernels` (64 roots per pass;
        ``jobs`` fans root batches out over a process pool) and stores
        the labels as flat CSR arrays behind
        :class:`~repro.core.build_kernels.RaggedView` rows.
        ``"sound-scalar"`` keeps the per-root reference loop the kernel
        is validated against; ``"paper"`` is Algorithm 1 verbatim.
        """
        if variant not in ("sound", "sound-scalar", "paper"):
            raise IndexBuildError(f"unknown PPL variant {variant!r}")
        n = graph.num_vertices
        degrees = graph.degree()
        order = np.argsort(-degrees, kind="stable").astype(np.int64)

        if variant == "sound":
            flat = build_sound_labels(graph, order, jobs=jobs,
                                      budget=budget)
            offsets = flat["label_offsets"]
            index = cls(graph, order,
                        RaggedView(offsets, flat["label_ranks"]),
                        RaggedView(offsets, flat["label_dists"]))
            index._flat_labels = flat
            return index

        label_ranks: List[List[int]] = [[] for _ in range(n)]
        label_dists: List[List[int]] = [[] for _ in range(n)]
        index = cls(graph, order, label_ranks, label_dists)
        if variant == "sound-scalar":
            index._build_sound_scalar(budget)
        else:
            index._build_paper(budget)
        return index

    def _build_sound_scalar(self, budget: Optional[TimeBudget]) -> None:
        """Reference sound construction: full + restricted BFS pairs.

        One root at a time; kept as the oracle the batched kernel is
        compared against entry-for-entry (and for the sampled scalar
        timings in ``benchmarks/test_build.py``).
        """
        graph = self._graph
        n = graph.num_vertices
        order = self._order
        rank_of = np.empty(n, dtype=np.int64)
        rank_of[order] = np.arange(n)
        full = np.empty(n, dtype=np.int32)
        restricted = np.empty(n, dtype=np.int32)
        for rank in range(n):
            if budget is not None and rank % 16 == 0:
                budget.check()
            root = int(order[rank])
            bfs_distances(graph, root, out=full)
            restricted_bfs(graph, root, rank_of, rank, out=restricted)
            labelled = np.nonzero(
                (restricted != UNREACHED) & (restricted == full)
            )[0]
            for u in labelled.tolist():
                self._label_ranks[u].append(rank)
                self._label_dists[u].append(int(full[u]))

    def _build_paper(self, budget: Optional[TimeBudget]) -> None:
        """Algorithm 1 verbatim (known-unsound; see module docstring)."""
        n = self._graph.num_vertices
        depth = np.full(n, -1, dtype=np.int32)
        covered_by_rank = np.full(n, INF, dtype=np.float64)
        for rank in range(n):
            if budget is not None and rank % 16 == 0:
                budget.check()
            self._paper_pruned_bfs(rank, depth, covered_by_rank)

    def _paper_pruned_bfs(self, rank: int, depth: np.ndarray,
                          covered_by_rank: np.ndarray) -> None:
        """One pruned BFS from the rank-th landmark (Algorithm 1).

        Frontier-at-a-time: each BFS level is expanded with one CSR
        gather, and the covered test (lines 6-10) for the whole level
        is a single vectorized label merge. ``covered_by_rank`` is a
        persistent dense scratch holding ``L(root)`` scattered by rank
        (``inf`` elsewhere), so ``covered(u)`` reduces to
        ``min(covered_by_rank[ranks_u] + dists_u)`` — the same
        merge-join minimum the per-vertex loop computed, because ranks
        absent from ``L(root)`` contribute ``inf``. Algorithm 1 visits
        the queue in BFS order and only ever mutates ``L(root)`` at
        depth 0 (the root is alone on its level), so whole-level
        evaluation matches the verbatim per-vertex order.
        """
        graph = self._graph
        indptr, indices = graph.indptr, graph.indices
        root = int(self._order[rank])
        depth.fill(-1)
        depth[root] = 0
        root_ranks = self._label_ranks[root]
        scattered = np.asarray(root_ranks, dtype=np.int64)
        covered_by_rank[scattered] = self._label_dists[root]
        frontier = np.array([root], dtype=np.int64)
        d = 0
        while len(frontier):
            covered = self._covered_minimum(frontier, covered_by_rank)
            labelled = covered >= d
            for u in frontier[labelled].tolist():
                self._label_ranks[u].append(rank)
                self._label_dists[u].append(d)
            if d == 0:
                # The root's own entry (rank, 0) just joined L(root).
                covered_by_rank[rank] = 0
            # Lines 9-10: covered == d keeps the label but prunes the
            # expansion; the root always expands.
            expandable = frontier[(covered > d) | (frontier == root)]
            neighbors = expand_frontier(indptr, indices,
                                        expandable.astype(np.int32))
            fresh = neighbors[depth[neighbors] < 0]
            fresh = np.unique(fresh)
            depth[fresh] = d + 1
            frontier = fresh.astype(np.int64)
            d += 1
        covered_by_rank[scattered] = INF
        covered_by_rank[rank] = INF

    def _covered_minimum(self, frontier: np.ndarray,
                         covered_by_rank: np.ndarray) -> np.ndarray:
        """``query(root, u)`` for a whole frontier in one reduction."""
        rows = [self._label_ranks[int(u)] for u in frontier]
        counts = np.fromiter((len(r) for r in rows), dtype=np.int64,
                             count=len(rows))
        covered = np.full(len(frontier), INF, dtype=np.float64)
        total = int(counts.sum())
        if total == 0:
            return covered
        flat_ranks = np.concatenate(
            [np.asarray(r, dtype=np.int64) for r in rows if len(r)])
        flat_dists = np.concatenate(
            [np.asarray(self._label_dists[int(u)], dtype=np.float64)
             for u, r in zip(frontier, rows) if len(r)])
        values = covered_by_rank[flat_ranks] + flat_dists
        nonempty = counts > 0
        offsets = np.concatenate((np.zeros(1, dtype=np.int64),
                                  np.cumsum(counts)[:-1]))
        covered[nonempty] = np.minimum.reduceat(values, offsets[nonempty])
        return covered

    @staticmethod
    def _query_distance_lists(ranks_a: Sequence[int],
                              dists_a: Sequence[int],
                              ranks_b: Sequence[int],
                              dists_b: Sequence[int]) -> float:
        """2-hop distance query by merge-join on sorted rank lists."""
        best = INF
        i = j = 0
        len_a, len_b = len(ranks_a), len(ranks_b)
        while i < len_a and j < len_b:
            ra, rb = ranks_a[i], ranks_b[j]
            if ra == rb:
                total = dists_a[i] + dists_b[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif ra < rb:
                i += 1
            else:
                j += 1
        return best

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact distance from the 2-hop labels (``None`` if apart)."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return 0
        best = self._query_distance_lists(
            self._label_ranks[u], self._label_dists[u],
            self._label_ranks[v], self._label_dists[v],
        )
        return None if best == INF else int(best)

    def query(self, u: int, v: int) -> ShortestPathGraph:
        """Answer ``SPG(u, v)`` by recursive label resolution (§3.2)."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return ShortestPathGraph.trivial(u)
        distance = self.distance(u, v)
        if distance is None:
            return ShortestPathGraph.empty(u, v)
        memo: Dict[Edge, FrozenSet[Edge]] = {}
        edges = self._resolve(u, v, distance, memo)
        return ShortestPathGraph(u, v, distance, edges)

    def _resolve(self, a: int, b: int, distance: int,
                 memo: Dict[Edge, FrozenSet[Edge]]) -> FrozenSet[Edge]:
        """Edges of ``G_ab`` via common-landmark splitting.

        The 2-hop path cover guarantees every shortest path of length
        >= 2 has an *interior* common landmark; splitting at all
        minimal ones and recursing covers every path. Memoization tames
        the redundant re-querying the paper's Example 3.4 shows.
        """
        key = _norm(a, b)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if distance == 0:
            memo[key] = frozenset()
            return memo[key]
        if distance == 1:
            memo[key] = frozenset({key})
            return memo[key]
        edges: Set[Edge] = set()
        for r, d_ar, d_br in self._common_minimal_landmarks(a, b, distance):
            if r == a or r == b:
                continue  # Definition 3.2 requires interior landmarks
            edges |= self._resolve(a, r, d_ar, memo)
            edges |= self._resolve(b, r, d_br, memo)
        result = frozenset(edges)
        memo[key] = result
        return result

    def _common_minimal_landmarks(self, a: int, b: int, distance: int):
        """Yield ``(vertex, d(a, r), d(b, r))`` for landmarks on shortest
        ``a``-``b`` paths (the ``V_uv`` sets of §3.2)."""
        ranks_a = self._label_ranks[a]
        dists_a = self._label_dists[a]
        ranks_b = self._label_ranks[b]
        dists_b = self._label_dists[b]
        i = j = 0
        while i < len(ranks_a) and j < len(ranks_b):
            ra, rb = ranks_a[i], ranks_b[j]
            if ra == rb:
                if dists_a[i] + dists_b[j] == distance:
                    yield int(self._order[ra]), dists_a[i], dists_b[j]
                i += 1
                j += 1
            elif ra < rb:
                i += 1
            else:
                j += 1

    # ------------------------------------------------------------------
    # Size accounting (Table 3)
    # ------------------------------------------------------------------

    def num_entries(self) -> int:
        """Total label entries across all vertices (size(L) of §2)."""
        return sum(len(ranks) for ranks in self._label_ranks)

    def paper_size_bytes(self) -> int:
        """Paper cost model (§6.1): 32-bit landmark + 8-bit distance."""
        return self.num_entries() * 5

    @property
    def order(self) -> np.ndarray:
        """Landmark order (vertex ids, degree-descending)."""
        return self._order

    def label_of(self, v: int) -> List[Tuple[int, int]]:
        """Label of ``v`` as ``[(landmark_vertex, distance), ...]``."""
        return [(int(self._order[rank]), int(dist))
                for rank, dist in zip(self._label_ranks[v],
                                      self._label_dists[v])]
