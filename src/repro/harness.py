"""Experiment harness: regenerate every table and figure of the paper.

Each ``run_*`` function reproduces one experiment on the synthetic
dataset stand-ins and returns a list of row dictionaries shaped like
the paper's tables; :func:`format_rows` renders them as an aligned
text table. The CLI (``python -m repro``) and the benchmark suite are
thin wrappers around these functions; see README.md for how the
experiments map to the paper's tables and figures.

All indexes are constructed through the :mod:`repro.engine` registry
(``build_index``) and all timing loops run through
:class:`~repro.engine.session.QuerySession`, so the harness measures
exactly the canonical API every other consumer uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ._util import Stopwatch, TimeBudget, format_bytes, format_seconds
from .analysis import (
    dataset_statistics,
    distance_distribution,
    pair_coverage,
    qbs_size_report,
)
from .engine import QueryOptions, QuerySession, build_index
from .errors import BudgetExceededError
from .workloads import (
    dataset_names,
    default_num_pairs,
    load_dataset,
    sample_pairs,
    small_dataset_names,
)

__all__ = [
    "run_table1",
    "run_table2_construction",
    "run_table2_query",
    "run_table3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_remarks_traversal",
    "run_dynamic",
    "format_rows",
    "DEFAULT_LANDMARKS",
    "LANDMARK_SWEEP",
]

#: The paper's default landmark count (§6.1).
DEFAULT_LANDMARKS = 20

#: Figures 8-11 sweep 20..100; Figures 10-11 start at 5.
LANDMARK_SWEEP = (20, 40, 60, 80, 100)
CONSTRUCTION_SWEEP = (5, 10, 15, 20, 40, 60, 80, 100)

#: Budgets standing in for the paper's 24-hour DNF wall, scaled to
#: laptop stand-ins.
PPL_BUDGET_SECONDS = 60.0
PARENT_PPL_BUDGET_SECONDS = 60.0


def _datasets(names: Optional[Iterable[str]]) -> List[str]:
    return list(names) if names is not None else dataset_names()


def _workload(graph, num_pairs: Optional[int], seed: int = 11):
    count = num_pairs if num_pairs is not None else default_num_pairs(graph)
    return sample_pairs(graph, count, seed=seed)


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------

def run_table1(names: Optional[Iterable[str]] = None) -> List[Dict]:
    """Table 1: per-dataset statistics of the stand-ins."""
    rows = []
    from .workloads import DATASETS

    for name in _datasets(names):
        spec = DATASETS[name]
        graph = load_dataset(name)
        stats = dataset_statistics(graph, seed=7)
        rows.append({
            "dataset": name,
            "type": spec.network_type,
            "paper_scale": f"{spec.paper_vertices}/{spec.paper_edges}",
            "|V|": stats["num_vertices"],
            "|E|": stats["num_edges"],
            "max_deg": stats["max_degree"],
            "avg_deg": round(stats["avg_degree"], 2),
            "avg_dist": round(stats["avg_distance"], 2),
            "|G|": format_bytes(stats["size_bytes"]),
        })
    return rows


# ----------------------------------------------------------------------
# Table 2 — construction and query time
# ----------------------------------------------------------------------

def run_table2_construction(names: Optional[Iterable[str]] = None,
                            num_landmarks: int = DEFAULT_LANDMARKS,
                            ppl_budget: float = PPL_BUDGET_SECONDS,
                            parent_budget: float = PARENT_PPL_BUDGET_SECONDS
                            ) -> List[Dict]:
    """Table 2 (left): labelling construction time per method.

    PPL/ParentPPL run only on the small stand-ins and under a time
    budget; exceeding it is reported as DNF — the laptop-scale
    equivalent of the paper's >24h and out-of-memory walls.
    """
    rows = []
    small = set(small_dataset_names())
    for name in _datasets(names):
        graph = load_dataset(name)
        with Stopwatch() as sw_seq:
            build_index(graph, "qbs", num_landmarks=num_landmarks)
        with Stopwatch() as sw_par:
            build_index(graph, "qbs", num_landmarks=num_landmarks,
                        parallel=True)
        row = {
            "dataset": name,
            "qbs_p": format_seconds(sw_par.elapsed),
            "qbs": format_seconds(sw_seq.elapsed),
            "qbs_p_seconds": sw_par.elapsed,
            "qbs_seconds": sw_seq.elapsed,
        }
        row["ppl"], row["ppl_seconds"] = _timed_build(
            lambda budget: build_index(graph, "ppl", budget=budget),
            ppl_budget if name in small else 0.5,
        )
        row["parent_ppl"], row["parent_ppl_seconds"] = _timed_build(
            lambda budget: build_index(graph, "parent-ppl",
                                       budget=budget),
            parent_budget if name in small else 0.5,
        )
        rows.append(row)
    return rows


def _timed_build(builder, budget_seconds: float):
    budget = TimeBudget(budget_seconds, label="construction")
    try:
        with Stopwatch() as sw:
            builder(budget)
    except BudgetExceededError as exc:
        return ("OOE" if exc.kind == "memory" else "DNF"), None
    except MemoryError:
        return "OOE", None
    return format_seconds(sw.elapsed), sw.elapsed


def run_table2_query(names: Optional[Iterable[str]] = None,
                     num_landmarks: int = DEFAULT_LANDMARKS,
                     num_pairs: Optional[int] = None,
                     ppl_budget: float = PPL_BUDGET_SECONDS) -> List[Dict]:
    """Table 2 (right): mean query time per method.

    QbS and Bi-BFS run everywhere; PPL/ParentPPL only where their
    construction finishes (as in the paper).
    """
    rows = []
    small = set(small_dataset_names())
    for name in _datasets(names):
        graph = load_dataset(name)
        pairs = _workload(graph, num_pairs)
        index = build_index(graph, "qbs", num_landmarks=num_landmarks)
        bibfs = build_index(graph, "bibfs")
        row = {"dataset": name}
        row["qbs_ms"] = _mean_query_ms(index, pairs)
        row["bibfs_ms"] = _mean_query_ms(bibfs, pairs)
        row["ppl_ms"] = row["parent_ppl_ms"] = None
        if name in small:
            try:
                budget = TimeBudget(ppl_budget, label="PPL construction")
                ppl = build_index(graph, "ppl", budget=budget)
                row["ppl_ms"] = _mean_query_ms(ppl, pairs)
            except BudgetExceededError:
                pass
            try:
                budget = TimeBudget(ppl_budget,
                                    label="ParentPPL construction")
                parent = build_index(graph, "parent-ppl", budget=budget)
                row["parent_ppl_ms"] = _mean_query_ms(parent, pairs)
            except (BudgetExceededError, MemoryError):
                pass
        row["speedup_vs_bibfs"] = round(
            row["bibfs_ms"] / row["qbs_ms"], 1
        ) if row["qbs_ms"] else None
        rows.append(row)
    return rows


def _mean_query_ms(index, pairs) -> float:
    """Mean SPG-mode query time over ``pairs`` via a QuerySession."""
    session = QuerySession(index, QueryOptions(mode="spg"))
    return session.run(pairs).mean_query_ms()


# ----------------------------------------------------------------------
# Table 3 — labelling sizes
# ----------------------------------------------------------------------

def run_table3(names: Optional[Iterable[str]] = None,
               num_landmarks: int = DEFAULT_LANDMARKS,
               ppl_budget: float = PPL_BUDGET_SECONDS) -> List[Dict]:
    """Table 3: size(L) and size(Δ) for QbS vs PPL/ParentPPL labels."""
    rows = []
    small = set(small_dataset_names())
    for name in _datasets(names):
        graph = load_dataset(name)
        index = build_index(graph, "qbs", num_landmarks=num_landmarks)
        report = qbs_size_report(index)
        row = {
            "dataset": name,
            "qbs_L": format_bytes(report.label_bytes),
            "qbs_delta": format_bytes(report.delta_bytes),
            "qbs_L_bytes": report.label_bytes,
            "qbs_delta_bytes": report.delta_bytes,
            "graph_bytes": graph.paper_size_bytes(),
            "ppl": None,
            "parent_ppl": None,
        }
        if name in small:
            try:
                ppl = build_index(
                    graph, "ppl",
                    budget=TimeBudget(ppl_budget, label="PPL"),
                )
                row["ppl"] = format_bytes(ppl.size_bytes)
                row["ppl_bytes"] = ppl.size_bytes
                parent = build_index(
                    graph, "parent-ppl",
                    budget=TimeBudget(ppl_budget, label="ParentPPL"),
                )
                row["parent_ppl"] = format_bytes(parent.size_bytes)
                row["parent_ppl_bytes"] = parent.size_bytes
            except (BudgetExceededError, MemoryError):
                pass
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 7 — distance distributions
# ----------------------------------------------------------------------

def run_fig7(names: Optional[Iterable[str]] = None,
             num_pairs: Optional[int] = None) -> List[Dict]:
    """Figure 7: distance distribution of sampled pairs per dataset."""
    rows = []
    for name in _datasets(names):
        graph = load_dataset(name)
        pairs = _workload(graph, num_pairs)
        hist = distance_distribution(graph, pairs)
        rows.append({
            "dataset": name,
            "mode": hist.mode(),
            "mean": round(hist.mean(), 2),
            "max": hist.max_distance(),
            "fractions": {d: round(f, 4) for d, f in
                          hist.fractions().items()},
        })
    return rows


# ----------------------------------------------------------------------
# Figure 8 — pair coverage vs landmarks
# ----------------------------------------------------------------------

def run_fig8(names: Optional[Iterable[str]] = None,
             landmark_counts: Sequence[int] = LANDMARK_SWEEP,
             num_pairs: Optional[int] = None) -> List[Dict]:
    """Figure 8: case (i)/(ii) coverage ratios across landmark counts."""
    rows = []
    for name in _datasets(names):
        graph = load_dataset(name)
        pairs = _workload(graph, num_pairs)
        for count in landmark_counts:
            index = build_index(graph, "qbs", num_landmarks=count)
            report = pair_coverage(index, pairs)
            rows.append({
                "dataset": name,
                "landmarks": count,
                "full_ratio": round(report.full_ratio, 4),
                "partial_ratio": round(report.partial_ratio, 4),
                "covered_ratio": round(report.covered_ratio, 4),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 9 — labelling size vs landmarks
# ----------------------------------------------------------------------

def run_fig9(names: Optional[Iterable[str]] = None,
             landmark_counts: Sequence[int] = LANDMARK_SWEEP) -> List[Dict]:
    """Figure 9: QbS labelling size growth with the landmark count."""
    rows = []
    for name in _datasets(names):
        graph = load_dataset(name)
        for count in landmark_counts:
            index = build_index(graph, "qbs", num_landmarks=count)
            report = qbs_size_report(index)
            rows.append({
                "dataset": name,
                "landmarks": count,
                "label_bytes": report.label_bytes,
                "delta_bytes": report.delta_bytes,
                "meta_bytes": report.meta_bytes,
                "total": format_bytes(report.total_bytes),
            })
    return rows


# ----------------------------------------------------------------------
# Figures 10 & 11 — construction / query time vs landmarks
# ----------------------------------------------------------------------

def run_fig10(names: Optional[Iterable[str]] = None,
              landmark_counts: Sequence[int] = CONSTRUCTION_SWEEP
              ) -> List[Dict]:
    """Figure 10: construction time growth (expected: linear in |R|)."""
    rows = []
    for name in _datasets(names):
        graph = load_dataset(name)
        for count in landmark_counts:
            with Stopwatch() as sw:
                build_index(graph, "qbs", num_landmarks=count)
            rows.append({
                "dataset": name,
                "landmarks": count,
                "seconds": sw.elapsed,
                "time": format_seconds(sw.elapsed),
            })
    return rows


def run_fig11(names: Optional[Iterable[str]] = None,
              landmark_counts: Sequence[int] = CONSTRUCTION_SWEEP,
              num_pairs: Optional[int] = None) -> List[Dict]:
    """Figure 11: mean query time across landmark counts."""
    rows = []
    for name in _datasets(names):
        graph = load_dataset(name)
        pairs = _workload(graph, num_pairs)
        for count in landmark_counts:
            index = build_index(graph, "qbs", num_landmarks=count)
            rows.append({
                "dataset": name,
                "landmarks": count,
                "query_ms": _mean_query_ms(index, pairs),
            })
    return rows


# ----------------------------------------------------------------------
# §6.5 remarks — edge-traversal savings
# ----------------------------------------------------------------------

def run_remarks_traversal(names: Optional[Iterable[str]] = None,
                          num_landmarks: int = DEFAULT_LANDMARKS,
                          num_pairs: Optional[int] = None) -> List[Dict]:
    """§6.5: edges traversed by QbS vs Bi-BFS on the same workload."""
    rows = []
    options = QueryOptions(mode="spg", collect_stats=True)
    for name in _datasets(names):
        graph = load_dataset(name)
        pairs = _workload(graph, num_pairs)
        index = build_index(graph, "qbs", num_landmarks=num_landmarks)
        bibfs = build_index(graph, "bibfs")
        qbs_edges = QuerySession(index, options).run(pairs) \
            .aggregate_stats()["edges_traversed"]
        bibfs_edges = QuerySession(bibfs, options).run(pairs) \
            .aggregate_stats()["edges_traversed"]
        saving = 1.0 - qbs_edges / bibfs_edges if bibfs_edges else 0.0
        rows.append({
            "dataset": name,
            "qbs_edges": qbs_edges,
            "bibfs_edges": bibfs_edges,
            "edges_saved": f"{saving:.1%}",
        })
    return rows


# ----------------------------------------------------------------------
# Dynamic updates — incremental maintenance vs rebuild-per-update
# ----------------------------------------------------------------------

def run_dynamic(names: Optional[Iterable[str]] = None,
                num_ops: Optional[int] = None,
                seed: int = 17) -> List[Dict]:
    """Amortized update cost of the dynamic subsystem per dataset.

    Builds the label family once, promotes it to a
    :class:`~repro.dynamic.DynamicIndex`, replays a seeded mixed
    insert/delete/query stream, and reports amortized per-mutation
    latency against the build-once cost a rebuild-per-update
    deployment would pay for every single edge change. Every query in
    the stream is answered by the dynamic index (through a
    :class:`QuerySession`, exercising version-keyed caching).

    Defaults to the small stand-ins — label construction is all-pairs
    work, so the large stand-ins belong to ``pytest benchmarks``.
    """
    from .dynamic import DynamicIndex
    from .workloads import generate_update_stream

    rows = []
    for name in (list(names) if names is not None
                 else small_dataset_names()):
        graph = load_dataset(name)
        with Stopwatch() as build_sw:
            static = build_index(graph, "ppl")
        index = DynamicIndex.from_static(static)
        count = num_ops if num_ops is not None \
            else min(200, max(40, graph.num_edges // 10))
        ops = generate_update_stream(graph, count, seed=seed)
        session = QuerySession(index, QueryOptions(mode="distance",
                                                   cache_size=256))
        mutations = 0
        update_seconds = 0.0
        query_records = []
        for kind, u, v in ops:
            if kind == "query":
                query_records.append(session.query(u, v))
                continue
            with Stopwatch() as sw:
                if kind == "insert":
                    index.insert_edge(u, v)
                else:
                    index.remove_edge(u, v)
            mutations += 1
            update_seconds += sw.elapsed
        stats = index.stats
        update_ms = (update_seconds / mutations * 1000.0
                     if mutations else 0.0)
        query_ms = (sum(r.seconds for r in query_records)
                    / len(query_records) * 1000.0
                    if query_records else 0.0)
        speedup = (build_sw.elapsed / (update_seconds / mutations)
                   if update_seconds and mutations else float("inf"))
        rows.append({
            "dataset": name,
            "|V|": graph.num_vertices,
            "|E|": graph.num_edges,
            "build": format_seconds(build_sw.elapsed),
            "build_seconds": build_sw.elapsed,
            "ops": len(ops),
            "mutations": mutations,
            "update_ms": update_ms,
            "query_ms": query_ms,
            "rebuilds": stats["rebuilds"],
            "fallbacks": stats["fallback_queries"],
            "speedup_vs_rebuild": f"{speedup:.0f}x",
        })
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def format_rows(rows: List[Dict], columns: Optional[Sequence[str]] = None
                ) -> str:
    """Render row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = [key for key in rows[0]
                   if not key.endswith(("_bytes", "_seconds"))
                   and key != "fractions"]
    cells = [[_render(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i])
                               for i in range(len(columns)))
                     for line in cells)
    return "\n".join((header, separator, body))


def _render(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
