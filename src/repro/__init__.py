"""Query-by-Sketch (QbS): shortest path graph queries at scale.

A faithful, laptop-scale reproduction of *Query-by-Sketch: Scaling
Shortest Path Graph Queries on Very Large Networks* (SIGMOD 2021).

Quickstart::

    from repro import Graph, build_index

    graph = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    index = build_index(graph, method="qbs", num_landmarks=2)
    spg = index.query(0, 2)          # shortest path graph, exactly
    spg.distance                     # 2
    sorted(spg.edges)                # [(0, 1), (0, 3), (1, 2), (2, 3)]
    spg.count_paths()                # 2

Engine API (``repro.engine``)
-----------------------------

Every index family — QbS and each baseline the paper benchmarks it
against — plugs into one engine surface:

* **Registry** — families are string-keyed; ``build_index(graph,
  method=..., **params)`` is the single construction entry point,
  ``available_methods()`` enumerates what is registered (``"qbs"``,
  ``"ppl"``, ``"parent-ppl"``, ``"naive"``, ``"bibfs"``,
  ``"qbs-directed"``, ``"dynamic"``, ``"sharded"``), and
  ``@register_index("name")`` drops a new backend in with zero
  call-site edits.
* **PathIndex contract** — every built index answers ``distance(u,
  v)``, ``query(u, v)`` (the exact shortest path graph),
  ``query_many(pairs)``, and exposes ``stats`` and ``size_bytes``
  under the paper's byte-accounting models.
* **Persistence** — ``index.save(path)`` / ``load_index(path)`` speak
  one self-describing, pickle-free npz/json format for every family;
  the loader dispatches through the registry.
* **Sessions** — ``QuerySession(index, QueryOptions(...))`` executes
  batches with a query mode (``distance`` | ``spg`` |
  ``count-paths``), an optional wall-clock budget (truncating, never
  raising), per-query ``SearchStats`` aggregation, and an optional
  LRU result cache.

The historical per-family classes (``QbSIndex``, ``PPLIndex``, ...)
remain exported for back-compatibility; ``build_index`` returns
engine-enabled subclasses of them.

See ``README.md`` for the system inventory and ``python -m repro
--help`` for the experiment, ``build`` and ``query`` commands.
"""

from .baselines import BiBFS, NaiveLabelling, ParentPPLIndex, PPLIndex, \
    spg_oracle
from .core import (
    QbSIndex,
    SearchStats,
    ShortestPathGraph,
    Sketch,
    bidirectional_spg,
    select_landmarks,
)
from .engine import (
    BatchReport,
    PathIndex,
    QueryOptions,
    QuerySession,
    available_methods,
    build_index,
    load_index,
    register_index,
)
from .errors import (
    BudgetExceededError,
    GraphFormatError,
    GraphValidationError,
    IndexBuildError,
    IndexFormatError,
    QueryError,
    ReproError,
    VertexError,
)
from .graph import Graph, GraphBuilder, build_graph

# Importing the dynamic package registers the "dynamic" engine family.
from .dynamic import DeltaGraph, DynamicIndex

# Importing the shard package registers the "sharded" engine family.
from .shard import ShardedIndex

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "Graph",
    "GraphBuilder",
    "build_graph",
    "QbSIndex",
    "ShortestPathGraph",
    "Sketch",
    "SearchStats",
    "select_landmarks",
    "BiBFS",
    "PPLIndex",
    "ParentPPLIndex",
    "NaiveLabelling",
    "spg_oracle",
    "bidirectional_spg",
    "PathIndex",
    "DeltaGraph",
    "DynamicIndex",
    "ShardedIndex",
    "build_index",
    "available_methods",
    "register_index",
    "load_index",
    "QuerySession",
    "QueryOptions",
    "BatchReport",
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "VertexError",
    "IndexBuildError",
    "IndexFormatError",
    "BudgetExceededError",
    "QueryError",
]
