"""Query-by-Sketch (QbS): shortest path graph queries at scale.

A faithful, laptop-scale reproduction of *Query-by-Sketch: Scaling
Shortest Path Graph Queries on Very Large Networks* (SIGMOD 2021).

Quickstart::

    from repro import Graph, QbSIndex

    graph = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    index = QbSIndex.build(graph, num_landmarks=2)
    spg = index.query(0, 2)          # shortest path graph, exactly
    spg.distance                     # 2
    sorted(spg.edges)                # [(0, 1), (0, 3), (1, 2), (2, 3)]
    spg.count_paths()                # 2

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the table/figure reproductions.
"""

from .baselines import BiBFS, NaiveLabelling, ParentPPLIndex, PPLIndex, \
    spg_oracle
from .core import (
    QbSIndex,
    SearchStats,
    ShortestPathGraph,
    Sketch,
    bidirectional_spg,
    select_landmarks,
)
from .errors import (
    BudgetExceededError,
    GraphFormatError,
    GraphValidationError,
    IndexBuildError,
    QueryError,
    ReproError,
    VertexError,
)
from .graph import Graph, GraphBuilder, build_graph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GraphBuilder",
    "build_graph",
    "QbSIndex",
    "ShortestPathGraph",
    "Sketch",
    "SearchStats",
    "select_landmarks",
    "BiBFS",
    "PPLIndex",
    "ParentPPLIndex",
    "NaiveLabelling",
    "spg_oracle",
    "bidirectional_spg",
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "VertexError",
    "IndexBuildError",
    "BudgetExceededError",
    "QueryError",
]
