"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries while tests can assert on the
precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when an edge list or serialized graph is malformed."""


class GraphValidationError(ReproError):
    """Raised when a graph violates a structural requirement.

    Examples: negative vertex ids, out-of-range endpoints in an edge
    array, or a CSR structure whose ``indptr`` is not monotone.
    """


class VertexError(ReproError, IndexError):
    """Raised when a vertex id is outside ``[0, num_vertices)``.

    Inherits :class:`IndexError` so generic indexing code keeps working.
    """

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex} is out of range for a graph with "
            f"{num_vertices} vertices"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class IndexBuildError(ReproError):
    """Raised when an index (QbS labelling, PPL, ...) cannot be built."""


class BudgetExceededError(IndexBuildError):
    """Raised when a construction exceeds its time or memory budget.

    The benchmark harness uses this to record DNF/OOE entries, mirroring
    the ``DNF`` (>24h) and ``OOE`` (out of memory) walls in Table 2 of the
    paper at laptop-scale budgets.
    """

    def __init__(self, message: str, *, kind: str) -> None:
        super().__init__(message)
        if kind not in ("time", "memory"):
            raise ValueError(f"unknown budget kind: {kind!r}")
        self.kind = kind


class QueryError(ReproError):
    """Raised when a query cannot be answered (e.g. index not built)."""


class IndexFormatError(ReproError):
    """Raised when a persisted index file is malformed or mismatched.

    Covers files that are not repro index archives at all, archives
    written by an incompatible format version, and archives whose
    recorded method has no registered implementation.
    """


class ServingError(ReproError):
    """Raised when the concurrent serving subsystem fails.

    Covers worker-pool lifecycle problems (a dead worker, a shutdown
    pool receiving requests) and snapshot transport failures.
    """


class ServiceOverloadedError(ServingError):
    """Raised by admission control when the serving queue is full.

    Clients are expected to back off and retry; the HTTP front-end
    maps this to a 503 response.
    """


class RequestExpiredError(ServingError):
    """Raised when a request's time budget lapsed before it was served.

    Budgeted requests that wait in the batching queue past their
    deadline fail with this instead of returning a late answer.
    """


class ImmutableIndexError(ServingError):
    """Raised when updates are sent to a service over a static index.

    Only mutable sources (the dynamic family) accept
    ``apply_updates``; the HTTP front-end maps this to a 409.
    """
