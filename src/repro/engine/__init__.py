"""The unified PathIndex engine: one registry, one query surface, one
persistence format for every index family.

This package is the canonical API for building and querying
shortest-path-graph indexes. The paper's method (QbS) and every
baseline it is benchmarked against plug into the same three pieces:

* :class:`~repro.engine.base.PathIndex` — the uniform index contract
  (``build`` / ``distance`` / ``query`` / ``query_many`` / ``stats`` /
  ``size_bytes`` / ``save`` / ``load``);
* the **registry** — :func:`register_index`, :func:`build_index`,
  :func:`available_methods`; families are string-keyed (``"qbs"``,
  ``"ppl"``, ``"parent-ppl"``, ``"naive"``, ``"bibfs"``,
  ``"qbs-directed"``, plus ``"dynamic"`` from :mod:`repro.dynamic`
  and ``"sharded"`` from :mod:`repro.shard`) and new backends are a
  one-decorator drop-in;
* :class:`QuerySession` / :class:`QueryOptions` — batched query
  execution with modes (distance | spg | count-paths), wall-clock
  budgets, per-query :class:`~repro.core.search.SearchStats`
  aggregation, and an optional LRU result cache.

Typical use::

    from repro import build_index, load_index, QuerySession, QueryOptions

    index = build_index(graph, method="qbs", num_landmarks=20)
    index.save("qbs.idx")                       # uniform npz format

    session = QuerySession(load_index("qbs.idx"),
                           QueryOptions(mode="count-paths",
                                        cache_size=1024))
    report = session.run(pairs)
    report.results, report.mean_query_ms(), report.aggregate_stats()
"""

from .base import PathIndex
from .persist import (
    describe_index,
    load_index,
    peek_index,
    read_index_state,
    save_index,
)
from .registry import (
    available_methods,
    build_index,
    get_index_class,
    register_index,
)
from .session import BatchReport, QueryOptions, QueryRecord, QuerySession

# Importing the families module registers the six built-in methods.
from . import families  # noqa: F401  (import for side effect)
from .families import (
    BiBfsPathIndex,
    DirectedQbsPathIndex,
    NaivePathIndex,
    ParentPplPathIndex,
    PplPathIndex,
    QbsPathIndex,
)

__all__ = [
    "PathIndex",
    "register_index",
    "build_index",
    "available_methods",
    "get_index_class",
    "save_index",
    "load_index",
    "peek_index",
    "describe_index",
    "read_index_state",
    "QuerySession",
    "QueryOptions",
    "QueryRecord",
    "BatchReport",
    "QbsPathIndex",
    "PplPathIndex",
    "ParentPplPathIndex",
    "NaivePathIndex",
    "BiBfsPathIndex",
    "DirectedQbsPathIndex",
]
