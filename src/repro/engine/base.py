"""The :class:`PathIndex` contract — one surface for every index family.

The paper presents Query-by-Sketch as one member of a family of
labelling-based shortest-path-graph indexes and benchmarks it against
several others (PPL, ParentPPL, the naive labelling, online Bi-BFS).
Each family in this repo grew its own ad-hoc surface; this module
defines the single contract they all satisfy:

* ``build(graph, **params)``  — offline construction (classmethod);
* ``distance(u, v)``          — exact distance, ``None`` if apart;
* ``distance_many(pairs)``    — batched distances (families override
  the per-pair default with vectorized kernels; see
  :mod:`repro.engine.batch`);
* ``query(u, v)``             — the shortest path graph, exactly;
* ``query_many(pairs)``       — batched queries;
* ``query_with_stats(u, v)``  — query plus search instrumentation
  (``None`` stats where a family has no counters);
* ``stats`` / ``size_bytes``  — uniform introspection;
* ``save(path)`` / ``load(path)`` — one npz/json persistence format
  for every family (see :mod:`repro.engine.persist`).

Implementations register themselves with
:func:`repro.engine.registry.register_index`, which is what makes
:func:`~repro.engine.registry.build_index` and the conformance test
suite enumerate them without fan-out edits.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import IndexFormatError

__all__ = ["PathIndex"]

#: ``to_state`` return type: (json-able metadata, named numpy arrays).
State = Tuple[Dict[str, Any], Dict[str, np.ndarray]]


class PathIndex(abc.ABC):
    """Abstract base for every shortest-path-graph index family.

    Subclasses are concrete index implementations (or thin subclasses
    of the historical classes) registered under a string method name.
    The contract is graph-kind agnostic: undirected families answer
    with :class:`~repro.core.spg.ShortestPathGraph`, directed families
    with :class:`~repro.directed.spg.DirectedSPG`; both expose
    ``distance``, ``count_paths`` and edge/arc sets.
    """

    #: Registry key, set by :func:`~repro.engine.registry.register_index`.
    method: ClassVar[str] = ""

    #: True for families built over :class:`~repro.directed.digraph.DiGraph`.
    directed: ClassVar[bool] = False

    @property
    def is_directed(self) -> bool:
        """Whether ``(u, v)`` and ``(v, u)`` are distinct queries.

        On undirected families the answer is symmetric, so result
        caches and batch deduplication normalize keys to
        ``(min(u, v), max(u, v))``; directed families keep ordered
        keys. :class:`~repro.engine.session.QuerySession` and the
        serving :class:`~repro.serving.batcher.Batcher` both gate
        their key normalization on this flag.
        """
        return type(self).directed

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def build(cls, graph, **params) -> "PathIndex":
        """Build the index over ``graph`` (the offline phase)."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact shortest-path distance (``None`` when disconnected)."""

    def distance_many(self, pairs: Iterable[Tuple[int, int]]
                      ) -> List[Optional[int]]:
        """Exact distances for a batch of ``(u, v)`` pairs.

        The contract's answers are identical to calling
        :meth:`distance` per pair — this default does exactly that.
        Families with array-backed labels override it with one
        vectorized kernel invocation per batch
        (:mod:`repro.engine.batch`); callers should always prefer
        this entry point for more than a handful of pairs.
        """
        return [self.distance(u, v) for u, v in pairs]

    @abc.abstractmethod
    def query(self, u: int, v: int):
        """The exact shortest path graph between ``u`` and ``v``."""

    def query_with_stats(self, u: int, v: int):
        """Like :meth:`query`, returning ``(spg, stats_or_None)``.

        Families with search instrumentation (QbS, Bi-BFS) override
        this to return a populated
        :class:`~repro.core.search.SearchStats`.
        """
        return self.query(u, v), None

    def query_many(self, pairs: Iterable[Tuple[int, int]]) -> List:
        """Answer a batch of ``(u, v)`` queries."""
        return [self.query(u, v) for u, v in pairs]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def graph(self):
        """The graph the index was built over."""

    @property
    def num_vertices(self) -> int:
        """Vertex count of the indexed graph.

        Kept contract-level so hot paths can range-check vertex ids
        without touching :attr:`graph` — mutable families override
        this, because their ``graph`` property materializes a
        snapshot.
        """
        return self.graph.num_vertices

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Index size under the paper's byte-accounting models.

        Zero for online methods that precompute nothing (Bi-BFS).
        """

    @property
    def version(self) -> int:
        """Mutation counter for cache invalidation.

        Static families never change after ``build`` and return ``0``
        forever; mutable families (the dynamic subsystem) bump this on
        every applied update. :class:`~repro.engine.session.
        QuerySession` keys its result cache on it, so cached answers
        can never outlive the graph state they were computed on.
        """
        return 0

    @property
    def stats(self) -> Dict[str, Any]:
        """Uniform index statistics; subclasses extend the base dict."""
        graph = self.graph
        edges = getattr(graph, "num_edges", None)
        if edges is None:
            edges = graph.num_arcs
        return {
            "method": self.method,
            "directed": self.directed,
            "num_vertices": graph.num_vertices,
            "num_edges": int(edges),
            "size_bytes": self.size_bytes,
        }

    # ------------------------------------------------------------------
    # Persistence (uniform npz/json format; see repro.engine.persist)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def to_state(self) -> State:
        """Decompose the index into ``(metadata, arrays)``.

        ``metadata`` must be JSON-serializable; ``arrays`` maps names
        to numpy arrays with non-object dtypes (the archive is written
        and read with ``allow_pickle=False``).
        """

    @classmethod
    @abc.abstractmethod
    def from_state(cls, meta: Dict[str, Any],
                   arrays: Dict[str, np.ndarray]) -> "PathIndex":
        """Reassemble an index from :meth:`to_state` output."""

    def save(self, path) -> None:
        """Persist the index to ``path`` in the uniform npz format."""
        from .persist import save_index

        save_index(self, path)

    @classmethod
    def load(cls, path) -> "PathIndex":
        """Load any saved index; on a subclass, require that family."""
        from .persist import load_index

        index = load_index(path)
        if cls is not PathIndex and not isinstance(index, cls):
            raise IndexFormatError(
                f"{path}: holds a {type(index).method!r} index, "
                f"not {cls.method!r}"
            )
        return index
