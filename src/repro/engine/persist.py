"""Uniform index persistence: one npz/json format for every family.

A saved index is a single compressed ``.npz`` archive whose
``__meta__`` entry is a JSON header::

    {"format": "repro-pathindex", "version": 1,
     "method": "<registry key>", "state": {...family metadata...}}

and whose remaining entries are the family's numpy arrays (from
``PathIndex.to_state``). Properties of the format:

* **self-describing** — ``load_index`` reads the method name from the
  header and dispatches through the registry, so one loader serves
  every family, including ones registered after this module shipped;
* **pickle-free** — written and read with ``allow_pickle=False``;
  unlike the historical QbS pickle files, archives cannot execute
  code on load and are portable across Python versions;
* **inspectable** — ``peek_index(path)`` returns the header without
  reconstructing the index.
"""

from __future__ import annotations

import json
import zipfile
from typing import Any, Dict

import numpy as np

from ..errors import GraphValidationError, IndexFormatError
from .base import PathIndex
from .registry import get_index_class

__all__ = ["save_index", "load_index", "peek_index",
           "FORMAT_NAME", "FORMAT_VERSION"]

FORMAT_NAME = "repro-pathindex"
FORMAT_VERSION = 1

#: Reserved archive entry holding the JSON header.
_META_KEY = "__meta__"


def save_index(index: PathIndex, path) -> None:
    """Write ``index`` to ``path`` in the uniform format.

    The file is written through an open handle so the name is taken
    literally (``np.savez`` would append ``.npz`` to bare paths).
    """
    meta, arrays = index.to_state()
    if _META_KEY in arrays:
        raise IndexFormatError(
            f"array name {_META_KEY!r} is reserved for the header"
        )
    header = json.dumps({
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "method": index.method,
        "state": meta,
    })
    try:
        with open(path, "wb") as handle:
            np.savez_compressed(handle,
                                **{_META_KEY: np.asarray(header)},
                                **arrays)
    except OSError as exc:
        raise IndexFormatError(
            f"{path}: cannot write index archive ({exc})"
        ) from exc


def _read_archive(path, with_arrays: bool):
    """Open a saved index, returning ``(header, arrays_or_None)``.

    All I/O and structural failures are normalized to
    :class:`IndexFormatError` here, so :func:`peek_index` and
    :func:`load_index` cannot drift apart in what they accept.
    """
    try:
        with open(path, "rb") as handle:
            if handle.read(1) == b"\x80":
                # A pickle opcode, not a zip archive: the retired
                # pre-engine pickle format. Never unpickle it.
                raise IndexFormatError(
                    f"{path}: legacy pickle-format index; this format "
                    f"is no longer read (unpickling untrusted bytes "
                    f"can execute code) — rebuild the index and save "
                    f"it again in the npz format"
                )
            handle.seek(0)
            with np.load(handle, allow_pickle=False) as archive:
                if _META_KEY not in archive.files:
                    raise IndexFormatError(
                        f"{path}: no {_META_KEY} entry; not a repro "
                        f"index file"
                    )
                header = _check_header(path, str(archive[_META_KEY][()]))
                arrays = None
                if with_arrays:
                    arrays = {name: archive[name]
                              for name in archive.files
                              if name != _META_KEY}
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise IndexFormatError(
            f"{path}: not a repro index archive ({exc})"
        ) from exc
    return header, arrays


def peek_index(path) -> Dict[str, Any]:
    """Read and validate the JSON header of a saved index."""
    header, _ = _read_archive(path, with_arrays=False)
    return header


def load_index(path) -> PathIndex:
    """Load a saved index of any registered family."""
    header, arrays = _read_archive(path, with_arrays=True)
    try:
        cls = get_index_class(header["method"])
    except Exception as exc:
        raise IndexFormatError(
            f"{path}: saved method {header['method']!r} has no "
            f"registered implementation"
        ) from exc
    try:
        return cls.from_state(header.get("state", {}), arrays)
    except IndexFormatError:
        raise
    except (KeyError, IndexError, ValueError, TypeError,
            GraphValidationError) as exc:
        raise IndexFormatError(
            f"{path}: {header['method']!r} archive is incomplete or "
            f"corrupt ({exc!r})"
        ) from exc


def _check_header(path, raw: str) -> Dict[str, Any]:
    try:
        header = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise IndexFormatError(
            f"{path}: malformed index header"
        ) from exc
    if not isinstance(header, dict) \
            or header.get("format") != FORMAT_NAME:
        raise IndexFormatError(f"{path}: not a repro index file")
    if header.get("version") != FORMAT_VERSION:
        raise IndexFormatError(
            f"{path}: format version {header.get('version')!r} is not "
            f"supported (expected {FORMAT_VERSION})"
        )
    if not isinstance(header.get("method"), str):
        raise IndexFormatError(f"{path}: header is missing the method")
    return header
