"""Uniform index persistence: one npz/json format for every family.

A saved index is a single compressed ``.npz`` archive whose
``__meta__`` entry is a JSON header::

    {"format": "repro-pathindex", "version": 1,
     "method": "<registry key>", "state": {...family metadata...}}

and whose remaining entries are the family's numpy arrays (from
``PathIndex.to_state``). Properties of the format:

* **self-describing** — ``load_index`` reads the method name from the
  header and dispatches through the registry, so one loader serves
  every family, including ones registered after this module shipped;
* **pickle-free** — written and read with ``allow_pickle=False``;
  unlike the historical QbS pickle files, archives cannot execute
  code on load and are portable across Python versions;
* **inspectable** — ``peek_index(path)`` returns the header without
  reconstructing the index, and ``describe_index(path)`` additionally
  lists every array's name/dtype/shape without reading array data;
* **crash-safe** — ``save_index`` writes to a same-directory
  temporary file and ``os.replace``\\ s it into place, so a crash
  mid-write can never leave a torn archive behind the final name (a
  serving hot-swap only ever sees the old file or the complete new
  one).

Out-of-core stores: ``load_index`` also accepts the packed
``REPROSTR`` container written by
:func:`repro.store.pack_index_store` (detected by magic) and returns
a store-backed index that faults labels in on demand. Passing
``mmap=True`` *requires* the memmap-served path — on a compressed
npz archive (which cannot be memmapped) it raises
:class:`~repro.errors.IndexFormatError` pointing at
``repro store pack`` instead of silently materializing everything.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zipfile
import zlib
from typing import Any, Dict, Tuple

import numpy as np

from ..errors import GraphValidationError, IndexFormatError
from .base import PathIndex
from .registry import get_index_class

__all__ = ["save_index", "load_index", "peek_index", "describe_index",
           "read_index_state", "FORMAT_NAME", "FORMAT_VERSION"]

FORMAT_NAME = "repro-pathindex"
FORMAT_VERSION = 1

#: Reserved archive entry holding the JSON header.
_META_KEY = "__meta__"


def save_index(index: PathIndex, path) -> None:
    """Write ``index`` to ``path`` in the uniform format, atomically.

    The archive is assembled in a temporary file in the *same
    directory* (same filesystem, so the final rename cannot degrade
    to a copy), fsynced, and moved over ``path`` with ``os.replace``.
    A crash at any point leaves either the previous file or the
    complete new one — never a truncated archive. The file is written
    through an open handle so the name is taken literally
    (``np.savez`` would append ``.npz`` to bare paths).
    """
    meta, arrays = index.to_state()
    if _META_KEY in arrays:
        raise IndexFormatError(
            f"array name {_META_KEY!r} is reserved for the header"
        )
    header = json.dumps({
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "method": index.method,
        "state": meta,
    })
    directory = os.path.dirname(os.path.abspath(os.fspath(path)))
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".repro-idx-",
                                   suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle,
                                **{_META_KEY: np.asarray(header)},
                                **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        tmp = None
    except OSError as exc:
        raise IndexFormatError(
            f"{path}: cannot write index archive ({exc})"
        ) from exc
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover
                pass


def _read_archive(path, with_arrays: bool):
    """Open a saved index, returning ``(header, arrays_or_None)``.

    All I/O and structural failures are normalized to
    :class:`IndexFormatError` here, so :func:`peek_index` and
    :func:`load_index` cannot drift apart in what they accept. The
    except tuple includes the decompression-layer errors a *truncated*
    member raises (``zlib.error``, ``struct.error``, ``EOFError``) —
    a partially copied archive must fail loudly, never yield a
    partial index.
    """
    try:
        with open(path, "rb") as handle:
            if handle.read(1) == b"\x80":
                # A pickle opcode, not a zip archive: the retired
                # pre-engine pickle format. Never unpickle it.
                raise IndexFormatError(
                    f"{path}: legacy pickle-format index; this format "
                    f"is no longer read (unpickling untrusted bytes "
                    f"can execute code) — rebuild the index and save "
                    f"it again in the npz format"
                )
            handle.seek(0)
            with np.load(handle, allow_pickle=False) as archive:
                if _META_KEY not in archive.files:
                    raise IndexFormatError(
                        f"{path}: no {_META_KEY} entry; not a repro "
                        f"index file"
                    )
                header = _check_header(path, str(archive[_META_KEY][()]))
                arrays = None
                if with_arrays:
                    arrays = {name: archive[name]
                              for name in archive.files
                              if name != _META_KEY}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError,
            struct.error, zlib.error) as exc:
        raise IndexFormatError(
            f"{path}: not a repro index archive ({exc})"
        ) from exc
    return header, arrays


def peek_index(path) -> Dict[str, Any]:
    """Read and validate the JSON header of a saved index.

    Works on both formats: npz archives return the ``repro-pathindex``
    header, packed label stores the ``repro-labelstore`` one (which
    additionally carries the array specs and tier assignments).
    """
    if _is_store(path):
        from ..store import read_store_header

        header, _ = read_store_header(path)
        return header
    header, _ = _read_archive(path, with_arrays=False)
    return header


def read_index_state(path) -> Tuple[str, Dict[str, Any],
                                    Dict[str, np.ndarray]]:
    """Read an npz archive's raw ``(method, state, arrays)``.

    The decomposed form of :func:`load_index` — for consumers that
    repack the arrays (e.g. ``repro store pack``) and must not pay
    for reconstructing per-vertex Python structures.
    """
    header, arrays = _read_archive(path, with_arrays=True)
    return header["method"], header.get("state", {}), arrays


def load_index(path, *, mmap: bool = False) -> PathIndex:
    """Load a saved index of any registered family.

    ``path`` may be an npz archive (fully materialized on load) or a
    packed label store (opened out-of-core: hot tier in RAM, cold
    labels faulted per query). With ``mmap=True`` the memmap-served
    path is *required*: a packed store opens as usual, a compressed
    npz raises :class:`IndexFormatError` (compressed archives cannot
    be memmapped — convert once with ``repro store pack``).
    """
    if _is_store(path):
        from ..store import open_store_index

        return open_store_index(path)
    if mmap:
        raise IndexFormatError(
            f"{path}: not a packed label store — compressed npz "
            f"archives cannot be memmapped; convert it once with "
            f"'repro store pack' and load the .store file"
        )
    header, arrays = _read_archive(path, with_arrays=True)
    try:
        cls = get_index_class(header["method"])
    except Exception as exc:
        raise IndexFormatError(
            f"{path}: saved method {header['method']!r} has no "
            f"registered implementation"
        ) from exc
    try:
        return cls.from_state(header.get("state", {}), arrays)
    except IndexFormatError:
        raise
    except (KeyError, IndexError, ValueError, TypeError,
            GraphValidationError) as exc:
        raise IndexFormatError(
            f"{path}: {header['method']!r} archive is incomplete or "
            f"corrupt ({exc!r})"
        ) from exc


def describe_index(path) -> Dict[str, Any]:
    """Describe a saved index without loading it.

    Returns the header fields plus one entry per stored array
    (name / dtype / shape / logical bytes; packed stores add the
    tier), and the on-disk size. Array *data* is never read: npz
    member headers are parsed straight out of the zip directory,
    store specs come from the container header.
    """
    size = _file_size(path)
    if _is_store(path):
        from ..store import read_store_header

        header, _ = read_store_header(path)
        arrays = [{
            "name": spec["name"],
            "dtype": spec["dtype"],
            "shape": tuple(spec["shape"]),
            "nbytes": int(spec["nbytes"]),
            "tier": spec["tier"],
        } for spec in header["arrays"]]
        return {
            "kind": "store",
            "format": header["format"],
            "version": header["version"],
            "method": header["method"],
            "state": header.get("state", {}),
            "file_bytes": size,
            "page_bytes": header["page_bytes"],
            "arrays": arrays,
        }
    header, _ = _read_archive(path, with_arrays=False)
    arrays = []
    try:
        with zipfile.ZipFile(os.fspath(path)) as archive:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[:-4]
                if name == _META_KEY:
                    continue
                with archive.open(info) as member:
                    version = np.lib.format.read_magic(member)
                    if version[0] == 1:
                        shape, _, dtype = \
                            np.lib.format.read_array_header_1_0(member)
                    else:
                        shape, _, dtype = \
                            np.lib.format.read_array_header_2_0(member)
                arrays.append({
                    "name": name,
                    "dtype": dtype.str,
                    "shape": tuple(shape),
                    "nbytes": int(np.prod(shape, dtype=np.int64)
                                  * dtype.itemsize),
                })
    except (zipfile.BadZipFile, OSError, ValueError, EOFError,
            struct.error, zlib.error) as exc:
        raise IndexFormatError(
            f"{path}: cannot describe archive ({exc})"
        ) from exc
    return {
        "kind": "npz",
        "format": header["format"],
        "version": header["version"],
        "method": header["method"],
        "state": header.get("state", {}),
        "file_bytes": size,
        "arrays": arrays,
    }


def _is_store(path) -> bool:
    from ..store import is_store_file

    return is_store_file(path)


def _file_size(path) -> int:
    try:
        return os.path.getsize(path)
    except OSError as exc:
        raise IndexFormatError(
            f"{path}: cannot stat index file ({exc})"
        ) from exc


def _check_header(path, raw: str) -> Dict[str, Any]:
    try:
        header = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise IndexFormatError(
            f"{path}: malformed index header"
        ) from exc
    if not isinstance(header, dict) \
            or header.get("format") != FORMAT_NAME:
        raise IndexFormatError(f"{path}: not a repro index file")
    if header.get("version") != FORMAT_VERSION:
        raise IndexFormatError(
            f"{path}: format version {header.get('version')!r} is not "
            f"supported (expected {FORMAT_VERSION})"
        )
    if not isinstance(header.get("method"), str):
        raise IndexFormatError(f"{path}: header is missing the method")
    return header
