"""Query sessions: batched execution with options, stats, and caching.

A :class:`QuerySession` wraps any :class:`~repro.engine.base.PathIndex`
and executes query batches under a :class:`QueryOptions` policy:

* **mode** — what to compute per pair: ``"distance"`` (fast path where
  the family has one), ``"spg"`` (the full shortest path graph) or
  ``"count-paths"`` (the Figure-1 quantity, via the SPG's DAG dynamic
  program);
* **time budget** — an optional wall-clock cap; a batch stops early
  and is reported as truncated instead of blowing the serving SLA;
* **stats** — per-query :class:`~repro.core.search.SearchStats` where
  the family is instrumented, aggregated over the batch (the §6.5
  traversal accounting);
* **cache** — an optional LRU result cache keyed by ``(u, v, mode,
  index.version)``; repeated pairs in a workload (the common case for
  serving traffic) are answered without touching the index, and the
  version component invalidates every cached answer the moment a
  mutable index applies an update. On undirected families the key is
  normalized to ``(min(u, v), max(u, v))`` — gated on
  :attr:`~repro.engine.base.PathIndex.is_directed` — so a ``(v, u)``
  lookup hits what ``(u, v)`` cached;
* **bulk distance dispatch** — a ``"distance"``-mode batch is
  deduplicated and answered through one
  :meth:`~repro.engine.base.PathIndex.distance_many` kernel call
  instead of a per-pair Python loop (:meth:`QuerySession.query_many`).

The harness's timing loops and the CLI ``query`` subcommand both run
on sessions, so every index family gets batching, budgets and caching
without implementing any of it.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .._util import Stopwatch
from ..core.search import SearchStats
from ..errors import QueryError
from ..obs import get_registry, log_slow_query, span, start_trace
from ..obs.profiler import attach_profile
from ..obs.trace import Span, TraceSampler
from .base import PathIndex

__all__ = ["QueryOptions", "QueryRecord", "BatchReport", "QuerySession",
           "normalize_pair"]

#: Valid ``QueryOptions.mode`` values.
QUERY_MODES = ("distance", "spg", "count-paths")

#: Pairs per bulk kernel call when a time budget must be honoured —
#: the budget is checked between chunks, so this bounds the overshoot.
_BUDGET_CHUNK = 256


def normalize_pair(u: int, v: int, mode: str,
                   directed: bool) -> Tuple[int, int]:
    """Canonical pair order for cache and dedup keys.

    Distances and path counts are the same number either way on an
    undirected index, so those modes normalize to ``(min, max)`` and
    ``(v, u)`` shares ``(u, v)``'s key. SPG answers are *oriented*
    (``source``/``target``, ``iter_paths`` direction), so ``"spg"``
    keeps the requested order — a reversed caller must never be
    served a flipped object. Directed indexes always keep order. The
    session LRU and the serving batcher both key through this one
    predicate, so the two layers cannot drift.
    """
    if v < u and mode != "spg" and not directed:
        return v, u
    return u, v


@dataclass(frozen=True)
class QueryOptions:
    """Execution policy for a :class:`QuerySession`.

    Attributes
    ----------
    mode:
        Per-pair computation: ``"distance"``, ``"spg"`` or
        ``"count-paths"``.
    time_budget:
        Wall-clock seconds a batch may spend; ``None`` means no cap.
        An exhausted budget truncates the batch (it never raises —
        partial results are the point of a budget).
    collect_stats:
        Record per-query :class:`SearchStats` where the family
        provides them (``"spg"``/``"count-paths"`` modes only).
    cache_size:
        Capacity of the LRU result cache; ``0`` disables caching.
    trace_sample:
        Fraction of queries (scalar) / batches (bulk) executed under
        a :mod:`repro.obs` trace: per-stage spans feed the
        ``stage_seconds`` histograms and the last sampled trace is
        kept on :attr:`QuerySession.last_trace`. Sampling is
        deterministic (every ``1/rate``-th query); ``0`` (the
        default) skips tracing entirely on a no-op fast path.
    slow_query_ms:
        Log executed queries slower than this many milliseconds to
        the ``repro.slowlog`` logger, with the trace id and per-stage
        breakdown when the query was sampled. ``None`` disables.
    """

    mode: str = "spg"
    time_budget: Optional[float] = None
    collect_stats: bool = False
    cache_size: int = 0
    trace_sample: float = 0.0
    slow_query_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in QUERY_MODES:
            raise QueryError(
                f"unknown query mode {self.mode!r}; "
                f"expected one of {QUERY_MODES}"
            )
        if self.cache_size < 0:
            raise QueryError("cache_size must be >= 0")
        if self.time_budget is not None and self.time_budget <= 0:
            raise QueryError("time_budget must be positive")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise QueryError("trace_sample must be in [0, 1]")
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise QueryError("slow_query_ms must be >= 0")


@dataclass
class QueryRecord:
    """One executed query: inputs, result, and instrumentation."""

    u: int
    v: int
    value: Any
    seconds: float
    cached: bool = False
    stats: Optional[SearchStats] = None
    mode: str = "spg"


@dataclass
class BatchReport:
    """Outcome of :meth:`QuerySession.run` over one batch."""

    mode: str
    records: List[QueryRecord] = field(default_factory=list)
    elapsed: float = 0.0
    truncated: bool = False

    @property
    def results(self) -> List[Any]:
        """Per-pair values, in input order (distance/SPG/count)."""
        return [record.value for record in self.records]

    @property
    def num_queries(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    def mean_query_ms(self) -> float:
        """Mean batch wall-clock per *record*, in milliseconds.

        Cache hits are records too, so under a warm cache this is an
        amortized number, not the latency of an actual index query —
        see :meth:`mean_executed_ms` for that.
        """
        if not self.records:
            return 0.0
        return self.elapsed * 1000.0 / len(self.records)

    @property
    def executed_queries(self) -> int:
        """Records that actually ran a query (cache hits excluded)."""
        return sum(1 for record in self.records if not record.cached)

    def mean_executed_ms(self) -> float:
        """Mean measured time per *executed* query, in milliseconds.

        Excludes cache hits (0-second records that would understate
        true per-query latency) and sums the executed records' own
        timings, so batches dominated by hot keys still report what a
        cold query costs. ``0.0`` when every record was a hit.
        """
        executed = [r.seconds for r in self.records if not r.cached]
        if not executed:
            return 0.0
        return sum(executed) * 1000.0 / len(executed)

    def aggregate_stats(self) -> Dict[str, Any]:
        """Fold the per-query :class:`SearchStats` into batch totals."""
        collected = [r.stats for r in self.records if r.stats is not None]
        return {
            "num_queries": self.num_queries,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (self.cache_hits / self.num_queries
                               if self.records else 0.0),
            "mode_counts": dict(Counter(r.mode for r in self.records)),
            "truncated": self.truncated,
            "elapsed_seconds": self.elapsed,
            "mean_query_ms": self.mean_query_ms(),
            "executed_queries": self.executed_queries,
            "mean_executed_ms": self.mean_executed_ms(),
            "queries_with_stats": len(collected),
            "edges_traversed": sum(s.edges_traversed for s in collected),
            "used_reverse": sum(1 for s in collected if s.used_reverse),
            "used_recover": sum(1 for s in collected if s.used_recover),
        }


class QuerySession:
    """Batch query executor over one index.

    Sessions are cheap to create and hold only the LRU cache (plus its
    hit/miss counters) as mutable state; one session per workload (or
    per serving worker) is the intended granularity. The cache is
    guarded by a lock, so a session may be shared by the serving
    front-end's threads; the underlying indexes are read-only at query
    time, so the queries themselves need no coordination.
    """

    def __init__(self, index: PathIndex,
                 options: Optional[QueryOptions] = None) -> None:
        self._index = index
        self.options = options if options is not None else QueryOptions()
        self._cache: "OrderedDict[Tuple[int, int, str, int], Any]" = \
            OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        # Registry instruments are resolved once here; the hot paths
        # below only pay one locked `+=` per event (or per batch).
        registry = get_registry()
        self._m_cache_hits = registry.counter(
            "session_cache_hits_total",
            help="Session LRU result-cache hits (incl. batch dedup).")
        self._m_cache_misses = registry.counter(
            "session_cache_misses_total",
            help="Session LRU result-cache misses.")
        self._m_queries = {
            mode: registry.counter("session_queries_total",
                                   help="Queries accepted by sessions.",
                                   mode=mode)
            for mode in QUERY_MODES}
        self._m_seconds = {
            mode: registry.histogram(
                "session_query_seconds",
                help="Per-call session execution time (one kernel "
                     "call for a distance batch).", mode=mode)
            for mode in QUERY_MODES}
        self._sampler = TraceSampler(self.options.trace_sample)
        #: Root span of the most recent sampled trace (CLI/debugging).
        self.last_trace: Optional[Span] = None

    @property
    def index(self) -> PathIndex:
        return self._index

    def _resolve_mode(self, mode: Optional[str]) -> str:
        if mode is None:
            return self.options.mode
        if mode not in QUERY_MODES:
            raise QueryError(
                f"unknown query mode {mode!r}; "
                f"expected one of {QUERY_MODES}"
            )
        return mode

    def _cache_key(self, u: int, v: int,
                   mode: str) -> Tuple[int, int, str, int]:
        """Cache/dedup key (see :func:`normalize_pair` for symmetry)."""
        u, v = normalize_pair(u, v, mode, self._index.is_directed)
        return (u, v, mode, self._index.version)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def query(self, u: int, v: int,
              mode: Optional[str] = None) -> QueryRecord:
        """Execute one query under the session's options.

        ``mode`` overrides the session-wide ``options.mode`` for this
        query (the serving workers answer mixed-mode traffic through
        one session); when omitted the session default applies.

        The cache key includes the index's :attr:`~repro.engine.base.
        PathIndex.version`, so entries cached before a mutation can
        never be served after it — they simply stop matching and age
        out of the LRU. On an undirected index the key is symmetric
        for the orientation-free modes (``distance``,
        ``count-paths``): ``query(v, u)`` hits what ``query(u, v)``
        cached.
        """
        mode = self._resolve_mode(mode)
        if self._sampler.should_sample():
            with start_trace("query", u=u, v=v, mode=mode) as root:
                record = self._query_inner(u, v, mode)
            # With a sampling profiler running, the trace carries
            # stack attribution (slow logs print it as profile=...).
            attach_profile(root)
            self.last_trace = root
            self._maybe_slow(record, root)
            return record
        record = self._query_inner(u, v, mode)
        self._maybe_slow(record, None)
        return record

    def _query_inner(self, u: int, v: int, mode: str) -> QueryRecord:
        options = self.options
        key = self._cache_key(u, v, mode)
        self._m_queries[mode].inc()
        if options.cache_size:
            with span("session.cache"):
                with self._cache_lock:
                    if key in self._cache:
                        self._cache.move_to_end(key)
                        self._cache_hits += 1
                        self._m_cache_hits.inc()
                        return QueryRecord(
                            u=u, v=v, value=self._cache[key],
                            seconds=0.0, cached=True, mode=mode)
                    self._cache_misses += 1
                    self._m_cache_misses.inc()
        stats = None
        with span("session.scalar", mode=mode):
            with Stopwatch() as sw:
                if mode == "distance":
                    value = self._index.distance(u, v)
                else:
                    if options.collect_stats:
                        spg, stats = self._index.query_with_stats(u, v)
                    else:
                        spg = self._index.query(u, v)
                    value = spg if mode == "spg" else spg.count_paths()
        self._m_seconds[mode].observe(sw.elapsed)
        if options.cache_size:
            with self._cache_lock:
                self._cache[key] = value
                if len(self._cache) > options.cache_size:
                    self._cache.popitem(last=False)
        return QueryRecord(u=u, v=v, value=value, seconds=sw.elapsed,
                           stats=stats, mode=mode)

    def _maybe_slow(self, record: QueryRecord,
                    root: Optional[Span]) -> None:
        threshold = self.options.slow_query_ms
        if threshold is None or record.cached:
            return
        elapsed_ms = record.seconds * 1000.0
        if elapsed_ms >= threshold:
            log_slow_query(record.u, record.v, record.mode,
                           elapsed_ms, threshold, root)

    def query_many(self, pairs: Iterable[Tuple[int, int]],
                   mode: Optional[str] = None) -> List[QueryRecord]:
        """Answer a batch, bulk-dispatching where the mode allows it.

        ``"distance"`` batches take the fast path: the cache is
        consulted in one locked pass, the misses are deduplicated on
        their (symmetric, for undirected indexes) keys, the surviving
        unique pairs reach the index as a *single*
        :meth:`~repro.engine.base.PathIndex.distance_many` kernel
        call, and the cache is refilled in one more locked pass.
        Records come back in input order; a record answered from the
        LRU or from another occurrence of its own key in the same
        batch is marked ``cached``. Other modes fall back to per-pair
        :meth:`query` calls (SPG extraction has no batch kernel).
        """
        mode = self._resolve_mode(mode)
        pairs = [(int(u), int(v)) for u, v in pairs]
        if self._sampler.should_sample():
            with start_trace("query_many", mode=mode,
                             pairs=len(pairs)) as root:
                records = self._query_many_inner(pairs, mode)
            attach_profile(root)
            self.last_trace = root
            if self.options.slow_query_ms is not None:
                for record in records:
                    self._maybe_slow(record, root)
            return records
        records = self._query_many_inner(pairs, mode)
        if self.options.slow_query_ms is not None:
            for record in records:
                self._maybe_slow(record, None)
        return records

    def _query_many_inner(self, pairs: List[Tuple[int, int]],
                          mode: str) -> List[QueryRecord]:
        if mode != "distance":
            return [self._query_inner(u, v, mode) for u, v in pairs]
        options = self.options
        self._m_queries[mode].inc(len(pairs))
        keys = [self._cache_key(u, v, mode) for u, v in pairs]
        records: List[Optional[QueryRecord]] = [None] * len(pairs)
        misses: "OrderedDict[Tuple[int, int, str, int], List[int]]" = \
            OrderedDict()
        if options.cache_size:
            batch_hits = batch_misses = 0
            with span("session.cache", pairs=len(pairs)):
                with self._cache_lock:
                    for i, key in enumerate(keys):
                        if key in self._cache:
                            self._cache.move_to_end(key)
                            self._cache_hits += 1
                            batch_hits += 1
                            u, v = pairs[i]
                            records[i] = QueryRecord(
                                u=u, v=v, value=self._cache[key],
                                seconds=0.0, cached=True, mode=mode)
                        elif key in misses:
                            # Answered by this batch's own
                            # deduplication without touching the index
                            # — a hit, exactly as the scalar path
                            # would have scored it one query later
                            # (and as the record reports it).
                            self._cache_hits += 1
                            batch_hits += 1
                            misses[key].append(i)
                        else:
                            self._cache_misses += 1
                            batch_misses += 1
                            misses[key] = [i]
            if batch_hits:
                self._m_cache_hits.inc(batch_hits)
            if batch_misses:
                self._m_cache_misses.inc(batch_misses)
        else:
            for i, key in enumerate(keys):
                misses.setdefault(key, []).append(i)
        if misses:
            kernel_pairs = [(key[0], key[1]) for key in misses]
            with span("session.kernel", pairs=len(kernel_pairs)):
                with Stopwatch() as sw:
                    values = self._index.distance_many(kernel_pairs)
            share = sw.elapsed / len(kernel_pairs)
            self._m_seconds[mode].observe(sw.elapsed)
            if options.cache_size:
                with self._cache_lock:
                    for key, value in zip(misses, values):
                        self._cache[key] = value
                        if len(self._cache) > options.cache_size:
                            self._cache.popitem(last=False)
            for key, value in zip(misses, values):
                for position, i in enumerate(misses[key]):
                    u, v = pairs[i]
                    # The first occurrence carries the kernel's cost
                    # share; duplicates were answered by batch dedup.
                    records[i] = QueryRecord(
                        u=u, v=v, value=value,
                        seconds=share if position == 0 else 0.0,
                        cached=position > 0, mode=mode)
        return records

    def run(self, pairs: Iterable[Tuple[int, int]]) -> BatchReport:
        """Execute a batch, honouring the time budget if one is set.

        ``"distance"`` mode dispatches through the bulk
        :meth:`query_many` path — one deduplicated kernel call per
        batch (per chunk, under a time budget). The budget is checked
        between queries or chunks (work in flight is never
        interrupted); once exceeded, the remaining pairs are skipped
        and the report is marked ``truncated``.
        """
        options = self.options
        report = BatchReport(mode=options.mode)
        deadline = None
        if options.time_budget is not None:
            deadline = time.perf_counter() + options.time_budget
        with Stopwatch() as sw:
            if options.mode == "distance":
                pairs = list(pairs)
                if deadline is None:
                    report.records = self.query_many(pairs)
                else:
                    for start in range(0, len(pairs), _BUDGET_CHUNK):
                        if time.perf_counter() > deadline:
                            report.truncated = True
                            break
                        report.records.extend(self.query_many(
                            pairs[start:start + _BUDGET_CHUNK]))
            else:
                for u, v in pairs:
                    if deadline is not None \
                            and time.perf_counter() > deadline:
                        report.truncated = True
                        break
                    report.records.append(self.query(u, v))
        report.elapsed = sw.elapsed
        return report

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------

    @property
    def cache_len(self) -> int:
        with self._cache_lock:
            return len(self._cache)

    @property
    def cache_hits_total(self) -> int:
        """Cumulative cache hits over the session's lifetime."""
        with self._cache_lock:
            return self._cache_hits

    @property
    def cache_misses_total(self) -> int:
        """Cumulative cache misses over the session's lifetime."""
        with self._cache_lock:
            return self._cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Lifetime hit rate (0.0 when caching is off or unused).

        Both counters are read under the cache lock so concurrent
        front-end threads see one consistent ratio.
        """
        with self._cache_lock:
            looked_up = self._cache_hits + self._cache_misses
            return self._cache_hits / looked_up if looked_up else 0.0

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
