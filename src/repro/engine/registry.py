"""String-keyed registry of index families.

Every index family registers itself once::

    @register_index("qbs")
    class QbsPathIndex(QbSIndex, PathIndex):
        ...

after which the rest of the system — the harness, the CLI, the
benchmarks, the conformance tests, the persistence loader — reaches
it only through :func:`build_index` / :func:`get_index_class`. Adding
a backend is one registration, not an edit per call-site.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import IndexBuildError, ReproError
from .base import PathIndex

__all__ = ["register_index", "build_index", "available_methods",
           "get_index_class"]

_REGISTRY: Dict[str, Type[PathIndex]] = {}


def register_index(name: str, *, aliases: tuple = ()):
    """Class decorator registering a :class:`PathIndex` subclass.

    ``name`` becomes the canonical ``method`` key (also recorded in
    saved index files); ``aliases`` are extra lookup keys.
    """
    if not name:
        raise IndexBuildError("index method name must be non-empty")

    def decorator(cls: Type[PathIndex]) -> Type[PathIndex]:
        if not (isinstance(cls, type) and issubclass(cls, PathIndex)):
            raise IndexBuildError(
                f"@register_index({name!r}) needs a PathIndex subclass, "
                f"got {cls!r}"
            )
        keys = (name, *aliases)
        for key in keys:
            existing = _REGISTRY.get(key)
            if existing is not None and existing is not cls:
                raise IndexBuildError(
                    f"index method {key!r} is already registered to "
                    f"{existing.__name__}"
                )
        cls.method = name
        for key in keys:
            _REGISTRY[key] = cls
        return cls

    return decorator


def available_methods() -> List[str]:
    """Canonical method names of all registered families, sorted."""
    return sorted({cls.method for cls in _REGISTRY.values()})


def get_index_class(method: str) -> Type[PathIndex]:
    """Resolve a method name (or alias) to its index class."""
    try:
        return _REGISTRY[method]
    except KeyError:
        raise ReproError(
            f"unknown index method {method!r}; "
            f"available: {available_methods()}"
        ) from None


def build_index(graph, method: str = "qbs", **params) -> PathIndex:
    """Build an index of the requested family over ``graph``.

    The single construction entry point: ``graph`` is a
    :class:`~repro.graph.csr.Graph` for undirected families or a
    :class:`~repro.directed.digraph.DiGraph` for directed ones
    (checked up front so the error names the mismatch rather than
    failing deep inside a BFS); ``params`` pass through to the
    family's ``build``.
    """
    from ..directed.digraph import DiGraph
    from ..graph.csr import Graph

    cls = get_index_class(method)
    expected = DiGraph if cls.directed else Graph
    if not isinstance(graph, expected):
        raise IndexBuildError(
            f"method {cls.method!r} needs a {expected.__name__}, "
            f"got {type(graph).__name__}"
        )
    return cls.build(graph, **params)
