"""Registered index families: the six backends behind the engine API.

Each class below subclasses one of the historical index classes and
mixes in :class:`~repro.engine.base.PathIndex`, adding exactly what
the uniform contract needs — ``size_bytes``, ``stats``, and the
``to_state``/``from_state`` pair behind the npz persistence format.
The historical classes keep their behaviour and public names
(``repro.QbSIndex`` still works); the registry hands out these
subclasses, so anything built through ``build_index`` speaks the full
engine surface.

Registered methods:

=============== ==================================================
``qbs``         Query-by-Sketch (the paper's method, §4-§5)
``ppl``         Pruned Path Labelling (§3.2, Algorithm 1)
``parent-ppl``  PPL with parent sets (§3.2)
``naive``       Full path labelling (all-pairs BFS matrix)
``bibfs``       Online bidirectional BFS (no precomputation)
``qbs-directed`` Directed QbS (the §2 extension)
=============== ==================================================
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import UNREACHED
from ..baselines.bibfs import BiBFS
from ..baselines.naive import NaiveLabelling
from ..baselines.parent_ppl import ParentPPLIndex
from ..baselines.ppl import PPLIndex
from ..core.build_kernels import ParentsView, RaggedView
from ..core.labelling import PathLabelling
from ..core.metagraph import build_meta_graph
from ..core.qbs import BuildReport, QbSIndex
from ..directed.digraph import DiGraph, _csr
from ..directed.qbs import DirectedQbSIndex, _DirectedScheme, \
    _meta_distances
from ..errors import IndexBuildError
from ..graph.csr import Graph
from .base import PathIndex
from .batch import batched_min_plus, cached_label_arrays, \
    finalize_distances, pairs_to_arrays, two_hop_distance_many
from .registry import register_index

__all__ = [
    "QbsPathIndex",
    "PplPathIndex",
    "ParentPplPathIndex",
    "NaivePathIndex",
    "BiBfsPathIndex",
    "DirectedQbsPathIndex",
]


# ----------------------------------------------------------------------
# Array (de)serialization helpers
# ----------------------------------------------------------------------

def _graph_arrays(graph: Graph) -> Dict[str, np.ndarray]:
    return {"indptr": graph.indptr, "indices": graph.indices}


def _graph_from_arrays(arrays: Dict[str, np.ndarray]) -> Graph:
    # Validate on load: archives may be truncated or hand-edited, and
    # an inconsistent CSR would otherwise surface as silently wrong
    # answers deep inside a BFS.
    return Graph(arrays["indptr"], arrays["indices"], validate=True)


def _pack_pairs(keys: Sequence[Tuple[int, int]],
                values: Sequence[int]) -> Dict[str, np.ndarray]:
    """Encode a ``(i, j) -> weight`` mapping as two arrays."""
    if keys:
        key_array = np.asarray(keys, dtype=np.int32)
        value_array = np.asarray(values, dtype=np.int32)
    else:
        key_array = np.zeros((0, 2), dtype=np.int32)
        value_array = np.zeros(0, dtype=np.int32)
    return {"key": key_array, "value": value_array}


def _unpack_pairs(key_array: np.ndarray,
                  value_array: np.ndarray) -> Dict[Tuple[int, int], int]:
    return {(int(i), int(j)): int(w)
            for (i, j), w in zip(key_array.tolist(),
                                 value_array.tolist())}


def _flatten_ragged(lists: Sequence[Sequence[int]], dtype
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Ragged list-of-lists -> (offsets[n+1], flat) arrays."""
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    if len(lists):
        offsets[1:] = np.cumsum([len(x) for x in lists])
    flat = np.empty(int(offsets[-1]), dtype=dtype)
    position = 0
    for values in lists:
        flat[position:position + len(values)] = values
        position += len(values)
    return offsets, flat


def _split_ragged(offsets: np.ndarray, flat: np.ndarray) -> List[List[int]]:
    return [flat[offsets[i]:offsets[i + 1]].tolist()
            for i in range(len(offsets) - 1)]


def _label_merge_distance_many(index, pairs) -> List[Optional[int]]:
    """Shared ``distance_many`` body of the 2-hop label families.

    PPL and ParentPPL answer distances by the same merge-join over
    rank-sorted labels; batched, both reduce to one
    :func:`~repro.engine.batch.two_hop_distance_many` call over the
    index's cached flat label arrays. The sound labels are a 2-hop
    distance cover, so the kernel is exact and no per-pair fallback is
    ever needed.
    """
    us, vs = pairs_to_arrays(pairs, index._graph.num_vertices)
    labels = cached_label_arrays(index, index._label_ranks,
                                 index._label_dists, index.version)
    return finalize_distances(two_hop_distance_many(labels, us, vs))


# ----------------------------------------------------------------------
# QbS (the paper's method)
# ----------------------------------------------------------------------

@register_index("qbs")
class QbsPathIndex(QbSIndex, PathIndex):
    """Query-by-Sketch behind the engine contract."""

    def distance_many(self, pairs) -> List[Optional[int]]:
        """Batched distances via one vectorized sketch-bound pass.

        The sketch upper bound ``d_top`` (Eq. 3) for the whole batch
        is one gather over the label matrix plus a min-plus reduction
        against the meta-graph distance matrix. A pair is answered
        without search when the bound is *provably* tight:

        * a common-landmark lower bound ``max_r |d(u,r) - d(v,r)|``
          (triangle inequality over exact label distances) meets
          ``d_top``; or
        * ``d_top == 2``, where the true distance is 1 exactly when
          the edge ``{u, v}`` exists (``d_top >= 2`` always holds for
          non-landmark endpoints, so nothing shorter is possible).

        Everything else — landmark endpoints, unproven bounds,
        sketch-disconnected pairs — falls back to the per-pair guided
        search, whose answers the bounds never contradict.
        """
        us, vs = pairs_to_arrays(pairs, self._graph.num_vertices)
        count = len(us)
        results: List[Optional[int]] = [None] * count
        if count == 0:
            return results
        resolved = us == vs
        for i in np.nonzero(resolved)[0].tolist():
            results[i] = 0
        landmark = self._labelling.landmark_position >= 0
        sketchable = ~resolved & ~landmark[us] & ~landmark[vs]
        idx = np.nonzero(sketchable)[0]
        if len(idx):
            label_u = self._labelling.label_rows_float(us[idx])
            label_v = self._labelling.label_rows_float(vs[idx])
            num_r = self._meta.dist.shape[0]
            d_top = batched_min_plus(label_u, self._meta.dist, label_v)
            common = np.isfinite(label_u) & np.isfinite(label_v)
            gap = np.zeros_like(label_u)
            np.subtract(label_u, label_v, out=gap, where=common)
            np.abs(gap, out=gap)
            lower = gap.max(axis=1) if num_r else np.zeros(len(idx))
            finite = np.isfinite(d_top)
            tight = finite & (lower == d_top)
            for k in np.nonzero(tight)[0].tolist():
                results[idx[k]] = int(d_top[k])
                resolved[idx[k]] = True
            near = finite & ~tight & (d_top == 2.0)
            for k in np.nonzero(near)[0].tolist():
                b = idx[k]
                results[b] = 1 if self._graph.has_edge(
                    int(us[b]), int(vs[b])) else 2
                resolved[b] = True
        for b in np.nonzero(~resolved)[0].tolist():
            results[b] = self.distance(int(us[b]), int(vs[b]))
        return results

    @property
    def size_bytes(self) -> int:
        """size(L) + size(M) + size(Δ) under the paper's models."""
        return (self.labelling.paper_size_bytes()
                + self.meta_graph.paper_size_bytes()
                + self.meta_graph.delta_total_edges() * 8)

    @property
    def stats(self) -> Dict[str, Any]:
        base = PathIndex.stats.fget(self)
        base.update({
            "num_landmarks": int(self.report.num_landmarks),
            "label_entries": self.labelling.size_entries(),
            "meta_edges": len(self.meta_graph.edges),
            "delta_edges": self.meta_graph.delta_total_edges(),
            "build_seconds": self.report.total_seconds,
        })
        return base

    # -- persistence ----------------------------------------------------

    def to_state(self):
        labelling = self.labelling
        meta_graph = self.meta_graph
        meta_keys = sorted(meta_graph.edges)
        meta_pairs = _pack_pairs(meta_keys,
                                 [meta_graph.edges[k] for k in meta_keys])
        delta_keys = sorted(meta_graph.delta)
        delta_lengths = np.asarray(
            [len(meta_graph.delta[k]) for k in delta_keys], dtype=np.int64
        )
        delta_edges = [edge for key in delta_keys
                       for edge in sorted(meta_graph.delta[key])]
        arrays = {
            **_graph_arrays(self.graph),
            "landmarks": labelling.landmarks,
            "label_matrix": labelling.label_matrix,
            "meta_key": meta_pairs["key"],
            "meta_weight": meta_pairs["value"],
            "delta_key": (np.asarray(delta_keys, dtype=np.int32)
                          if delta_keys
                          else np.zeros((0, 2), dtype=np.int32)),
            "delta_len": delta_lengths,
            "delta_edges": (np.asarray(delta_edges, dtype=np.int32)
                            if delta_edges
                            else np.zeros((0, 2), dtype=np.int32)),
        }
        return {"report": asdict(self.report)}, arrays

    @classmethod
    def from_state(cls, meta, arrays):
        graph = _graph_from_arrays(arrays)
        landmarks = arrays["landmarks"].astype(np.int32)
        position = np.full(graph.num_vertices, -1, dtype=np.int32)
        position[landmarks] = np.arange(len(landmarks), dtype=np.int32)
        labelling = PathLabelling(
            landmarks=landmarks,
            landmark_position=position,
            label_matrix=arrays["label_matrix"].astype(np.uint8),
            meta_edges=_unpack_pairs(arrays["meta_key"],
                                     arrays["meta_weight"]),
        )
        meta_graph = build_meta_graph(graph, labelling,
                                      precompute_delta=False)
        cursor = 0
        edge_rows = arrays["delta_edges"]
        for (i, j), length in zip(arrays["delta_key"].tolist(),
                                  arrays["delta_len"].tolist()):
            block = edge_rows[cursor:cursor + length]
            meta_graph.delta[(int(i), int(j))] = frozenset(
                (int(a), int(b)) for a, b in block.tolist()
            )
            cursor += length
        report = BuildReport(**meta["report"])
        sparsified = graph.remove_vertices(landmarks)
        return cls(graph, labelling, meta_graph, sparsified, report)

    # Persistence comes from PathIndex unchanged; QbSIndex itself now
    # routes its save/load through the same npz format (the historical
    # pickle format is detected and refused on load).
    def save(self, path) -> None:
        PathIndex.save(self, path)

    @classmethod
    def load(cls, path) -> "QbsPathIndex":
        return PathIndex.load.__func__(cls, path)


# ----------------------------------------------------------------------
# PPL and ParentPPL
# ----------------------------------------------------------------------

@register_index("ppl")
class PplPathIndex(PPLIndex, PathIndex):
    """Pruned Path Labelling behind the engine contract."""

    def distance_many(self, pairs) -> List[Optional[int]]:
        """Batched 2-hop label merges as one vectorized kernel call."""
        return _label_merge_distance_many(self, pairs)

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def size_bytes(self) -> int:
        return self.paper_size_bytes()

    @property
    def stats(self) -> Dict[str, Any]:
        base = PathIndex.stats.fget(self)
        base["label_entries"] = self.num_entries()
        return base

    def to_state(self):
        flat = getattr(self, "_flat_labels", None)
        if flat is not None:
            # Kernel-built (or previously loaded) indexes already hold
            # the flat CSR label arrays — serialize with zero copies.
            rank_offsets = flat["label_offsets"]
            flat_ranks = flat["label_ranks"]
            flat_dists = flat["label_dists"]
        else:
            rank_offsets, flat_ranks = _flatten_ragged(self._label_ranks,
                                                       np.int64)
            _, flat_dists = _flatten_ragged(self._label_dists, np.int32)
        arrays = {
            **_graph_arrays(self.graph),
            "order": self._order,
            "label_offsets": rank_offsets,
            "label_ranks": flat_ranks,
            "label_dists": flat_dists,
        }
        return {}, arrays

    @classmethod
    def from_state(cls, meta, arrays):
        graph = _graph_from_arrays(arrays)
        offsets = np.asarray(arrays["label_offsets"], dtype=np.int64)
        flat_ranks = np.asarray(arrays["label_ranks"], dtype=np.int64)
        flat_dists = np.asarray(arrays["label_dists"], dtype=np.int32)
        index = cls(
            graph,
            arrays["order"].astype(np.int64),
            RaggedView(offsets, flat_ranks),
            RaggedView(offsets, flat_dists),
        )
        index._flat_labels = {
            "label_offsets": offsets,
            "label_ranks": flat_ranks,
            "label_dists": flat_dists,
        }
        return index


@register_index("parent-ppl")
class ParentPplPathIndex(ParentPPLIndex, PathIndex):
    """ParentPPL behind the engine contract."""

    def distance_many(self, pairs) -> List[Optional[int]]:
        """Batched 2-hop label merges as one vectorized kernel call.

        Parent sets play no role in distances, so the kernel is the
        same as PPL's.
        """
        return _label_merge_distance_many(self, pairs)

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def size_bytes(self) -> int:
        return self.paper_size_bytes()

    @property
    def stats(self) -> Dict[str, Any]:
        base = PathIndex.stats.fget(self)
        base["label_entries"] = self.num_entries()
        base["parent_slots"] = self.num_parent_slots()
        return base

    def to_state(self):
        flat = getattr(self, "_flat_labels", None)
        if flat is not None:
            rank_offsets = flat["label_offsets"]
            flat_ranks = flat["label_ranks"]
            flat_dists = flat["label_dists"]
            parent_offsets = flat["parent_offsets"]
            flat_parents = flat["parents"]
        else:
            rank_offsets, flat_ranks = _flatten_ragged(self._label_ranks,
                                                       np.int64)
            _, flat_dists = _flatten_ragged(self._label_dists, np.int32)
            entry_parents = [parents for per_vertex in self._label_parents
                             for parents in per_vertex]
            parent_offsets, flat_parents = _flatten_ragged(entry_parents,
                                                           np.int32)
        arrays = {
            **_graph_arrays(self.graph),
            "order": self._order,
            "label_offsets": rank_offsets,
            "label_ranks": flat_ranks,
            "label_dists": flat_dists,
            "parent_offsets": parent_offsets,
            "parents": flat_parents,
        }
        return {}, arrays

    @classmethod
    def from_state(cls, meta, arrays):
        graph = _graph_from_arrays(arrays)
        offsets = np.asarray(arrays["label_offsets"], dtype=np.int64)
        flat_ranks = np.asarray(arrays["label_ranks"], dtype=np.int64)
        flat_dists = np.asarray(arrays["label_dists"], dtype=np.int32)
        parent_offsets = np.asarray(arrays["parent_offsets"],
                                    dtype=np.int64)
        flat_parents = np.asarray(arrays["parents"], dtype=np.int32)
        index = cls(graph, arrays["order"].astype(np.int64),
                    RaggedView(offsets, flat_ranks),
                    RaggedView(offsets, flat_dists),
                    ParentsView(offsets, parent_offsets, flat_parents))
        index._flat_labels = {
            "label_offsets": offsets,
            "label_ranks": flat_ranks,
            "label_dists": flat_dists,
            "parent_offsets": parent_offsets,
            "parents": flat_parents,
        }
        return index


# ----------------------------------------------------------------------
# Naive labelling and Bi-BFS
# ----------------------------------------------------------------------

@register_index("naive")
class NaivePathIndex(NaiveLabelling, PathIndex):
    """Naive full path labelling behind the engine contract."""

    def distance_many(self, pairs) -> List[Optional[int]]:
        """One fancy-index gather over the all-pairs matrix."""
        us, vs = pairs_to_arrays(pairs, self._graph.num_vertices)
        row = self._matrix[us, vs]
        return [None if value == UNREACHED else int(value)
                for value in row.tolist()]

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def size_bytes(self) -> int:
        return self.paper_size_bytes()

    @property
    def stats(self) -> Dict[str, Any]:
        base = PathIndex.stats.fget(self)
        base["label_entries"] = self.num_entries()
        return base

    def to_state(self):
        return {}, {**_graph_arrays(self.graph), "matrix": self._matrix}

    @classmethod
    def from_state(cls, meta, arrays):
        return cls(_graph_from_arrays(arrays),
                   arrays["matrix"].astype(np.int32))


@register_index("bibfs")
class BiBfsPathIndex(BiBFS, PathIndex):
    """Online Bi-BFS behind the engine contract (no precomputation)."""

    @classmethod
    def build(cls, graph: Graph, **params) -> "BiBfsPathIndex":
        if params:
            raise IndexBuildError(
                f"bibfs precomputes nothing and takes no build "
                f"parameters; got {sorted(params)}"
            )
        return cls(graph)

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def size_bytes(self) -> int:
        return 0

    def to_state(self):
        return {}, _graph_arrays(self.graph)

    @classmethod
    def from_state(cls, meta, arrays):
        return cls(_graph_from_arrays(arrays))


# ----------------------------------------------------------------------
# Directed QbS
# ----------------------------------------------------------------------

@register_index("qbs-directed")
class DirectedQbsPathIndex(DirectedQbSIndex, PathIndex):
    """Directed Query-by-Sketch behind the engine contract."""

    directed = True

    @property
    def size_bytes(self) -> int:
        """Forward + backward labels (|R| bytes per vertex each, the
        paper's §6.1 accounting) plus 9 bytes per meta arc."""
        scheme = self._scheme
        label_bytes = 2 * self.graph.num_vertices * len(scheme.landmarks)
        return label_bytes + 9 * len(scheme.meta_arcs)

    @property
    def stats(self) -> Dict[str, Any]:
        base = PathIndex.stats.fget(self)
        base.update({
            "num_landmarks": len(self.landmarks),
            "meta_arcs": len(self._scheme.meta_arcs),
        })
        return base

    def to_state(self):
        graph = self.graph
        scheme = self._scheme
        arc_keys = sorted(scheme.meta_arcs)
        meta_pairs = _pack_pairs(arc_keys,
                                 [scheme.meta_arcs[k] for k in arc_keys])
        arrays = {
            "out_indptr": graph.out_indptr,
            "out_indices": graph.out_indices,
            "landmarks": scheme.landmarks,
            "forward": scheme.forward,
            "backward": scheme.backward,
            "meta_key": meta_pairs["key"],
            "meta_weight": meta_pairs["value"],
        }
        return {}, arrays

    @classmethod
    def from_state(cls, meta, arrays):
        out_indptr = arrays["out_indptr"].astype(np.int64)
        out_indices = arrays["out_indices"].astype(np.int32)
        n = len(out_indptr) - 1
        src = np.repeat(np.arange(n, dtype=np.int32),
                        np.diff(out_indptr))
        graph = DiGraph(*_csr(src, out_indices, n),
                        *_csr(out_indices, src, n))
        landmarks = arrays["landmarks"].astype(np.int32)
        position = np.full(n, -1, dtype=np.int32)
        position[landmarks] = np.arange(len(landmarks), dtype=np.int32)
        scheme = _DirectedScheme(
            landmarks=landmarks,
            position=position,
            forward=arrays["forward"].astype(np.uint8),
            backward=arrays["backward"].astype(np.uint8),
            meta_arcs=_unpack_pairs(arrays["meta_key"],
                                    arrays["meta_weight"]),
        )
        scheme.meta_dist = _meta_distances(scheme.meta_arcs,
                                           len(landmarks))
        sparsified = graph.remove_vertices(landmarks)
        return cls(graph, scheme, sparsified)
