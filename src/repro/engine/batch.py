"""Vectorized batch-distance kernels behind ``distance_many``.

The paper's headline claim is *online query speed*, yet a batch
answered through a Python loop pays interpreter dispatch per pair —
orders of magnitude more than the label arithmetic itself. This module
holds the shared numpy kernels the index families build their
:meth:`~repro.engine.base.PathIndex.distance_many` overrides from:

* :func:`pairs_to_arrays` — one validation pass turning an iterable of
  ``(u, v)`` pairs into two int64 arrays (bad vertex ids raise
  :class:`~repro.errors.VertexError` exactly like the scalar path);
* :class:`LabelArrays` — per-vertex ragged 2-hop labels, flattened
  once per index version (cache via :func:`cached_label_arrays`) into
  a **dense head** and a **sparse tail**: label entries on the
  highest-ranked landmarks — where degree-ordered labellings
  concentrate their entries — live in a ``(|V|, H)`` float32 matrix,
  the long tail stays in CSR arrays;
* :func:`two_hop_distance_many` — the label-merge kernel shared by
  the ``ppl``/``parent-ppl``/``dynamic`` families: the head
  contributes ``min_r d(u, r) + d(r, v)`` as one row gather + add +
  min-reduction over the whole batch, the tail via one sorted-key
  binary-search intersection — no per-pair merge joins anywhere;
* :func:`finalize_distances` — float results (``inf`` = disconnected)
  back to the contract's ``Optional[int]`` list.

The kernel chunks its pair dimension so peak memory stays bounded
regardless of batch size.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError, VertexError

__all__ = ["pairs_to_arrays", "LabelArrays", "cached_label_arrays",
           "two_hop_distance_many", "batched_min_plus",
           "finalize_distances", "distances_to_float"]

#: Head width cap: ranks below this bound get dense columns.
_HEAD_WIDTH = 256

#: Cap on the dense head matrix (float32 bytes); the width shrinks on
#: huge graphs so precomputation never dominates index memory.
_HEAD_BYTES = 64 * 1024 * 1024

#: Pairs per kernel chunk (bounds the transient batch matrices).
_CHUNK_PAIRS = 4096

#: Broadcast elements per :func:`batched_min_plus` chunk (~16 MB f64).
_MIN_PLUS_ELEMS = 2_000_000


def pairs_to_arrays(pairs: Iterable[Tuple[int, int]],
                    num_vertices: int) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a pair batch into ``(us, vs)`` int64 arrays.

    Vertex ids are range-checked up front (one vectorized pass) so a
    kernel never computes on garbage indices; the first offending id
    raises :class:`VertexError`, matching the scalar ``distance``.
    """
    rows = list(pairs)
    if not rows:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    array = np.asarray(rows, dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise QueryError(
            f"distance_many expects (u, v) pairs; got shape "
            f"{array.shape}"
        )
    us, vs = array[:, 0].copy(), array[:, 1].copy()
    for side in (us, vs):
        bad = (side < 0) | (side >= num_vertices)
        if bad.any():
            raise VertexError(int(side[int(np.argmax(bad))]),
                              num_vertices)
    return us, vs


def finalize_distances(best: np.ndarray) -> List[Optional[int]]:
    """Float distances (``inf`` = disconnected) -> ``Optional[int]``."""
    return [None if value == np.inf else int(value)
            for value in best.tolist()]


def distances_to_float(values: Iterable[Optional[int]]) -> np.ndarray:
    """``Optional[int]`` distances -> float64 (``None`` -> ``inf``).

    The dual of :func:`finalize_distances`, for feeding contract-level
    answers back into ``min``/``+`` compositions.
    """
    return np.array([np.inf if value is None else float(value)
                     for value in values], dtype=np.float64)


def batched_min_plus(left: np.ndarray, matrix: np.ndarray,
                     right: np.ndarray) -> np.ndarray:
    """``out[p] = min_{i,j} left[p, i] + matrix[i, j] + right[p, j]``.

    The batched min-plus reduction behind both the QbS sketch bound
    (rows = label distances, matrix = meta-graph distances) and the
    sharded relay (rows = boundary distances, matrix = overlay
    block). Chunked over the pair dimension so the broadcast
    temporary stays bounded.
    """
    count = len(left)
    out = np.full(count, np.inf, dtype=np.float64)
    if matrix.size == 0 or not count:
        return out
    step = max(1, _MIN_PLUS_ELEMS // matrix.size)
    for start in range(0, count, step):
        chunk = slice(start, start + step)
        through = (left[chunk][:, :, None]
                   + matrix[None, :, :]).min(axis=1)
        out[chunk] = (through + right[chunk]).min(axis=1)
    return out


class LabelArrays:
    """2-hop labels packed for the batch kernel: dense head + CSR tail.

    ``head[v, r]`` holds ``d(v, rank r)`` for ranks below
    ``head_width`` (``inf`` when absent) — degree-ordered labellings
    put most entries on those hub ranks, so most of every merge is a
    dense row operation. Entries on higher ranks live in the tail:
    ``tail_offsets[v]:tail_offsets[v + 1]`` slices vertex ``v``'s
    ``(tail_ranks, tail_dists)``, rank-sorted per vertex.
    ``num_ranks`` spans the rank id space (for collision-free
    ``slot * num_ranks + rank`` keys).
    """

    __slots__ = ("head", "head_width", "tail_offsets", "tail_ranks",
                 "tail_dists", "num_ranks")

    def __init__(self, head: np.ndarray, tail_offsets: np.ndarray,
                 tail_ranks: np.ndarray, tail_dists: np.ndarray,
                 num_ranks: int) -> None:
        self.head = head
        self.head_width = head.shape[1]
        self.tail_offsets = tail_offsets
        self.tail_ranks = tail_ranks
        self.tail_dists = tail_dists
        self.num_ranks = num_ranks

    @classmethod
    def from_lists(cls, label_ranks: Sequence[Sequence[int]],
                   label_dists: Sequence[Sequence[int]]
                   ) -> "LabelArrays":
        counts = np.fromiter((len(ranks) for ranks in label_ranks),
                             dtype=np.int64, count=len(label_ranks))
        offsets = np.zeros(len(label_ranks) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        flat_ranks = np.empty(total, dtype=np.int64)
        flat_dists = np.empty(total, dtype=np.float64)
        position = 0
        for ranks, dists in zip(label_ranks, label_dists):
            step = len(ranks)
            flat_ranks[position:position + step] = ranks
            flat_dists[position:position + step] = dists
            position += step
        return cls.from_flat(offsets, flat_ranks, flat_dists)

    @classmethod
    def from_flat(cls, offsets: np.ndarray, flat_ranks: np.ndarray,
                  flat_dists: np.ndarray,
                  head_width: Optional[int] = None) -> "LabelArrays":
        """Pack from a flat label CSR (``offsets[v]:offsets[v + 1]``
        slices vertex ``v``'s rank-sorted entries).

        This is the zero-materialization path: the persistence format
        and the out-of-core store both hold labels in exactly this
        layout, and the inputs may be memmap-backed — everything here
        is one vectorized pass, no per-vertex Python objects. Entries
        must be ordered by (vertex, rank), which every producer of the
        flat layout guarantees.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        num_vertices = len(offsets) - 1
        if head_width is None:
            head_width = int(min(
                _HEAD_WIDTH,
                max(16, _HEAD_BYTES // (4 * max(1, num_vertices)))))
        flat_ranks = np.asarray(flat_ranks, dtype=np.int64)
        flat_dists = np.asarray(flat_dists, dtype=np.float64)
        counts = np.diff(offsets)
        vertex_of = np.repeat(
            np.arange(num_vertices, dtype=np.int64), counts)
        in_head = flat_ranks < head_width
        head = np.full((num_vertices, head_width), np.inf,
                       dtype=np.float32)
        head[vertex_of[in_head], flat_ranks[in_head]] = \
            flat_dists[in_head]
        in_tail = ~in_head
        tail_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(vertex_of[in_tail],
                              minlength=num_vertices),
                  out=tail_offsets[1:])
        # Entries are ordered by (vertex, rank) already, so the masked
        # views are the tail CSR verbatim.
        return cls(head, tail_offsets,
                   np.ascontiguousarray(flat_ranks[in_tail]),
                   np.ascontiguousarray(flat_dists[in_tail]),
                   num_vertices)

    def gather_tail(self, vertices: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, dists)`` of the tail entries of ``vertices``.

        ``keys[i] = slot * num_ranks + rank`` where ``slot`` is the
        position in ``vertices`` — ascending by construction (slots
        ascend, ranks ascend within a vertex), so both sides of the
        kernel's intersection arrive pre-sorted.
        """
        starts = self.tail_offsets[vertices]
        counts = self.tail_offsets[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.float64))
        slots = np.repeat(np.arange(len(vertices), dtype=np.int64),
                          counts)
        ends = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64) \
            + np.repeat(starts - (ends - counts), counts)
        keys = slots * self.num_ranks + self.tail_ranks[positions]
        return keys, self.tail_dists[positions]


def cached_label_arrays(owner, label_ranks, label_dists,
                        version: int) -> LabelArrays:
    """Per-index :class:`LabelArrays`, rebuilt only when ``version``
    moves (the packing costs one pass over every label entry)."""
    cached = getattr(owner, "_label_arrays_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    from ..core.build_kernels import RaggedView

    if (isinstance(label_ranks, RaggedView)
            and isinstance(label_dists, RaggedView)
            and isinstance(label_ranks.flat, np.ndarray)
            and isinstance(label_dists.flat, np.ndarray)):
        # Kernel-built labels are already the flat CSR this kernel
        # wants; skip the per-vertex materialization entirely.
        arrays = LabelArrays.from_flat(label_ranks.offsets,
                                       label_ranks.flat,
                                       label_dists.flat)
    else:
        arrays = LabelArrays.from_lists(label_ranks, label_dists)
    owner._label_arrays_cache = (version, arrays)
    return arrays


def two_hop_distance_many(labels: LabelArrays, us: np.ndarray,
                          vs: np.ndarray) -> np.ndarray:
    """Batched 2-hop label merge: ``min_r d(u, r) + d(r, v)`` per pair.

    Exact whenever the labels are a 2-hop distance cover (the sound
    PPL invariant). Returns float64 distances with ``inf`` where the
    endpoints share no labelled rank; ``u == v`` pairs are 0 by
    definition.
    """
    count = len(us)
    out = np.full(count, np.inf, dtype=np.float64)
    for start in range(0, count, _CHUNK_PAIRS):
        chunk = slice(start, min(start + _CHUNK_PAIRS, count))
        # Head: two row gathers, one add, one min-reduction.
        best = (labels.head[us[chunk]]
                + labels.head[vs[chunk]]).min(axis=1)
        best = best.astype(np.float64)
        # Tail: sorted-key intersection (both sides arrive sorted, so
        # matching is a binary-search pass, not a re-sort).
        keys_u, dists_u = labels.gather_tail(us[chunk])
        keys_v, dists_v = labels.gather_tail(vs[chunk])
        if len(keys_u) and len(keys_v):
            positions = np.searchsorted(keys_u, keys_v)
            positions[positions == len(keys_u)] = 0
            matched = keys_u[positions] == keys_v
            hit_v = np.nonzero(matched)[0]
            if len(hit_v):
                sums = dists_u[positions[hit_v]] + dists_v[hit_v]
                slots = keys_v[hit_v] // labels.num_ranks
                # `slots` ascends: grouped min via reduceat, then one
                # scatter against the head's answer.
                group_starts = np.nonzero(
                    np.r_[True, np.diff(slots) != 0])[0]
                group_slots = slots[group_starts]
                best[group_slots] = np.minimum(
                    best[group_slots],
                    np.minimum.reduceat(sums, group_starts))
        out[chunk] = best
    out[us == vs] = 0.0
    return out
