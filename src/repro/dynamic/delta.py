"""Mutable graph overlay: a frozen CSR base plus an edge delta.

Every graph in this library is an immutable CSR :class:`~repro.graph.
csr.Graph` — the right substrate for index construction, but a dead
end for serving live traffic where edges arrive and disappear
continuously. :class:`DeltaGraph` layers a mutable overlay on top of a
frozen base:

* ``added``   — edges present now but absent from the base;
* ``removed`` — base edges deleted from the current view.

The overlay answers the same adjacency surface as :class:`Graph`
(``num_vertices`` / ``num_edges`` / ``degree`` / ``neighbors`` /
``has_edge`` / ``edges`` / ``edge_array`` / ``_check_vertex``), so
per-vertex traversal code runs on either unchanged. Whole-graph
kernels that want raw CSR arrays (``indptr`` / ``indices``) are served
by a **lazily materialized snapshot**: the first access after a
mutation rebuilds a frozen :class:`Graph` of the current view and
caches it until the next mutation, so bursts of reads between
mutations pay the materialization once. ``spg_oracle`` and the BFS
kernels therefore accept a ``DeltaGraph`` directly.

The vertex universe is fixed by the base graph — dynamic maintenance
of the label families (the consumer of this class) keys every array by
vertex id. Grow the id space up front (build the base with a larger
``num_vertices``) when vertices must appear over time.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..errors import GraphValidationError
from ..graph.csr import Graph

__all__ = ["DeltaGraph", "normalize_edge"]

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Canonical undirected form ``(min, max)``."""
    return (u, v) if u <= v else (v, u)


class DeltaGraph:
    """A mutable view of a frozen CSR base graph.

    Mutations (:meth:`insert_edge` / :meth:`remove_edge`) are O(degree)
    and bump :attr:`version`; reads see the current view. The class
    models the *current* graph only — bookkeeping about what an index
    has or has not absorbed belongs to the index layered on top.
    """

    def __init__(self, base: Graph) -> None:
        self._base = base
        self._added: Dict[int, Set[int]] = {}
        self._removed_adj: Dict[int, Set[int]] = {}
        self._removed: Set[Edge] = set()
        self._num_added = 0
        self._version = 0
        self._snapshot: Optional[Graph] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``{u, v}`` to the current view.

        Returns ``False`` (a no-op) when the edge is already present;
        re-inserting a removed base edge revives it. Self loops are
        rejected — the substrate stores simple graphs only.
        """
        self._check_endpoints(u, v)
        edge = normalize_edge(u, v)
        if edge in self._removed:
            self._removed.discard(edge)
            self._removed_adj[edge[0]].discard(edge[1])
            self._removed_adj[edge[1]].discard(edge[0])
            self._mutated()
            return True
        if self.has_edge(u, v):
            return False
        self._added.setdefault(edge[0], set()).add(edge[1])
        self._added.setdefault(edge[1], set()).add(edge[0])
        self._num_added += 1
        self._mutated()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete the undirected edge ``{u, v}`` from the current view.

        Returns ``False`` (a no-op) when the edge is not present.
        """
        self._check_endpoints(u, v)
        edge = normalize_edge(u, v)
        added_row = self._added.get(edge[0])
        if added_row is not None and edge[1] in added_row:
            added_row.discard(edge[1])
            self._added[edge[1]].discard(edge[0])
            self._num_added -= 1
            self._mutated()
            return True
        if edge not in self._removed and self._base.has_edge(u, v):
            self._removed.add(edge)
            self._removed_adj.setdefault(edge[0], set()).add(edge[1])
            self._removed_adj.setdefault(edge[1], set()).add(edge[0])
            self._mutated()
            return True
        return False

    def _mutated(self) -> None:
        self._version += 1
        self._snapshot = None

    def _check_endpoints(self, u: int, v: int) -> None:
        self._base._check_vertex(u)
        self._base._check_vertex(v)
        if u == v:
            raise GraphValidationError(
                f"cannot mutate self loop ({u}, {v}): the substrate "
                f"stores simple graphs"
            )

    # ------------------------------------------------------------------
    # Adjacency surface (Graph-compatible)
    # ------------------------------------------------------------------

    @property
    def base(self) -> Graph:
        """The frozen CSR graph under the overlay."""
        return self._base

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every applied insert/remove."""
        return self._version

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + self._num_added - len(self._removed)

    @property
    def num_directed_edges(self) -> int:
        return 2 * self.num_edges

    def degree(self, v: Optional[int] = None):
        if v is None:
            return np.asarray([self.degree(u)
                               for u in range(self.num_vertices)],
                              dtype=np.int64)
        return len(self.neighbors(v))

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` in the current view."""
        row = self._base.neighbors(v)
        removed = self._removed_adj.get(v)
        added = self._added.get(v)
        if not removed and not added:
            return row
        if removed:
            row = row[~np.isin(row, np.fromiter(removed, dtype=np.int32,
                                                count=len(removed)))]
        if added:
            extra = np.fromiter(added, dtype=np.int32, count=len(added))
            row = np.concatenate((row, extra))
            row.sort()
        return row

    def has_edge(self, u: int, v: int) -> bool:
        self._base._check_vertex(u)
        self._base._check_vertex(v)
        edge = normalize_edge(u, v)
        if edge in self._removed:
            return False
        row = self._added.get(edge[0])
        if row is not None and edge[1] in row:
            return True
        return self._base.has_edge(u, v)

    def edges(self) -> Iterator[Edge]:
        """Iterate current undirected edges as ``(u, v)``, ``u < v``."""
        for u, v in self._base.edges():
            if (u, v) not in self._removed:
                yield u, v
        for u in sorted(self._added):
            for v in sorted(self._added[u]):
                if u < v:
                    yield u, v

    def edge_array(self) -> np.ndarray:
        return self.snapshot().edge_array()

    def added_edges(self) -> List[Edge]:
        """Current non-base edges, sorted."""
        return sorted((u, v) for u, row in self._added.items()
                      for v in row if u < v)

    def removed_edges(self) -> List[Edge]:
        """Base edges deleted from the current view, sorted."""
        return sorted(self._removed)

    @property
    def delta_size(self) -> int:
        """Edges by which the view differs from the base."""
        return self._num_added + len(self._removed)

    def _check_vertex(self, v: int) -> None:
        self._base._check_vertex(v)

    # ------------------------------------------------------------------
    # Materialization (raw-CSR consumers: BFS kernels, oracle, build)
    # ------------------------------------------------------------------

    def snapshot(self) -> Graph:
        """The current view as a frozen CSR :class:`Graph`.

        Cached between mutations; O(|V| + |E|) to rebuild after one.
        """
        if self._snapshot is None:
            if self.delta_size == 0:
                self._snapshot = self._base
            else:
                self._snapshot = Graph.from_edges(
                    self.edges(), num_vertices=self.num_vertices)
        return self._snapshot

    @property
    def indptr(self) -> np.ndarray:
        """Row pointers of the materialized snapshot (see above)."""
        return self.snapshot().indptr

    @property
    def indices(self) -> np.ndarray:
        """Adjacency array of the materialized snapshot (see above)."""
        return self.snapshot().indices

    def __repr__(self) -> str:
        return (f"DeltaGraph(num_vertices={self.num_vertices}, "
                f"num_edges={self.num_edges}, "
                f"added={self._num_added}, removed={len(self._removed)})")
