"""Incremental maintenance of pruned path labels under edge updates.

The PPL and ParentPPL families (Section 3.2) are 2-hop *distance
covers*: for every pair ``(u, v)`` some landmark ``r`` on a shortest
``u``-``v`` path appears in both labels with exact distances, so the
rank merge-join returns ``d(u, v)`` exactly. This module keeps that
property true while the graph changes, without rebuilding:

* **Insertion** (:func:`repair_insert`) — resumed pruned BFS, the
  classic incremental scheme for pruned landmark labellings (Akiba,
  Iwata and Yoshida, *Dynamic and historical shortest-path distance
  queries on large evolving networks*, WWW 2014, adapted to path
  labels). A new edge ``(a, b)`` only creates shortest paths of the
  form ``r ⇝ a → b ⇝ w`` (or the mirror image) that cross it exactly
  once, so for every entry ``(r, δ)`` in ``L(a)`` a partial BFS is
  resumed from ``b`` at depth ``δ + 1``, pruned wherever the current
  labels already answer ``≤`` the candidate depth. Existing entries are
  lowered in place, missing ones inserted; cost is proportional to the
  region whose distances actually changed.

* **Deletion** — decremental 2-hop maintenance is the hard direction
  (stored distances become *under*-estimates, which a min merge-join
  cannot detect), so deletions are handled by invalidation: deleted
  edges stay in the labels' graph as *phantom* edges and the query
  layer checks, per pair, whether any phantom edge lies on a
  label-shortest path (:func:`touches_phantom_edge` — the pair is then
  *poisoned*). Poisoned pairs are re-validated by a label-guided
  delta-BFS (:func:`guided_levels`) that walks only vertices on
  label-shortest paths; pairs whose distance genuinely grew fall back
  to a plain BFS. :class:`~repro.dynamic.index.DynamicIndex` bounds
  the phantom set with its rebuild policy.

Soundness of the guided search (used for validation *and* for exact
SPG extraction): with ``G ⊆ G_label`` and ``d = d_label(s, t)``, every
vertex ``x`` on a current shortest ``s``-``t`` path of length ``d``
satisfies ``d_label(s, x) + d_label(x, t) = d`` with both terms equal
to the current distances (squeeze by the triangle inequality), so the
level-restricted BFS reaches exactly the current shortest-path
vertices at their true depths, and an edge ``(x, y)`` with
``level_s[x] + 1 + level_t[y] = d`` lies on a current shortest path.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..baselines.ppl import PPLIndex

__all__ = ["MutableLabels", "repair_insert", "guided_levels",
           "touches_phantom_edge"]

Edge = Tuple[int, int]

#: ``neighbors(v) -> array of neighbour ids`` — the adjacency callback
#: used by the repair BFS and the guided search.
NeighborFn = Callable[[int], Iterable[int]]

_merge_min = PPLIndex._query_distance_lists

_INF = float("inf")


class MutableLabels:
    """Rank-sorted 2-hop path labels with in-place entry updates.

    Wraps the per-vertex parallel ``(rank, distance)`` lists the PPL
    family stores (and, for ParentPPL, the aligned parent-tuple lists)
    *by reference*: updates mutate the owning index's lists directly.
    ``order`` maps rank -> vertex id; ``rank_of`` is its inverse.
    """

    def __init__(self, order: np.ndarray,
                 label_ranks: List[List[int]],
                 label_dists: List[List[int]],
                 label_parents: Optional[List[List[Tuple[int, ...]]]] = None
                 ) -> None:
        self.order = order
        self.rank_of = np.empty(len(label_ranks), dtype=np.int64)
        self.rank_of[order] = np.arange(len(label_ranks))
        self.ranks = label_ranks
        self.dists = label_dists
        self.parents = label_parents
        self.repaired_entries = 0
        self._cov = None

    def _covered_by_rank(self) -> np.ndarray:
        """Dense ``L(root)``-by-rank scratch for the repair BFS.

        Allocated once and reused across resumes; callers scatter one
        root's label into it and must restore ``inf`` before returning.
        """
        if self._cov is None:
            self._cov = np.full(len(self.rank_of), _INF,
                                dtype=np.float64)
        return self._cov

    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact distance in the labels' graph (``None`` if apart)."""
        if u == v:
            return 0
        best = _merge_min(self.ranks[u], self.dists[u],
                          self.ranks[v], self.dists[v])
        return None if best == _INF else int(best)

    def num_entries(self) -> int:
        return sum(len(ranks) for ranks in self.ranks)

    def set_entry(self, w: int, rank: int, dist: int) -> None:
        """Insert or lower the entry ``(rank, dist)`` on vertex ``w``.

        For ParentPPL labels the aligned parent slot is set to the
        empty tuple — parent sets are rebuilt, not repaired (the
        dynamic query path never reads them; see ``DynamicIndex``).
        """
        ranks = self.ranks[w]
        position = bisect_left(ranks, rank)
        if position < len(ranks) and ranks[position] == rank:
            self.dists[w][position] = dist
            if self.parents is not None:
                self.parents[w][position] = ()
        else:
            ranks.insert(position, rank)
            self.dists[w].insert(position, dist)
            if self.parents is not None:
                self.parents[w].insert(position, ())
        self.repaired_entries += 1


def repair_insert(labels: MutableLabels, neighbors: NeighborFn,
                  a: int, b: int) -> None:
    """Restore label exactness after inserting the edge ``(a, b)``.

    ``neighbors`` must describe the labels' graph *including* the new
    edge (and any phantom edges still credited to the labels). Labels
    must be exact for that graph minus ``(a, b)`` on entry; they are
    exact for the full graph on return.
    """
    for x, y in ((a, b), (b, a)):
        # Snapshot: entries added while repairing must not re-drive
        # the loop. Stored rank order = highest priority first.
        for root_rank, d_rx in list(zip(labels.ranks[x], labels.dists[x])):
            _resume_pruned_bfs(labels, neighbors, root_rank, y, d_rx + 1)


def _resume_pruned_bfs(labels: MutableLabels, neighbors: NeighborFn,
                       root_rank: int, start: int, start_dist: int) -> None:
    """Partial BFS for landmark ``order[root_rank]`` from ``start``.

    A vertex is labelled (and expanded) only where the candidate depth
    strictly beats what the current labels already answer — the
    standard prune that confines the walk to the region whose
    distances the new edge actually changed.

    Frontier-at-a-time (same shape as the construction kernels): each
    level's prune test is one vectorized label merge. ``L(root)`` is
    scattered by rank into a persistent dense scratch, making
    ``known(w)`` a gather-add-min over ``L(w)``'s entries; that stays
    valid for the whole resume because the walk never relabels the
    root itself (``known(root) = 0`` always prunes).
    """
    root = int(labels.order[root_rank])
    covered_by_rank = labels._covered_by_rank()
    scattered = np.asarray(labels.ranks[root], dtype=np.int64)
    covered_by_rank[scattered] = labels.dists[root]
    frontier = [int(start)]
    depth = start_dist
    try:
        while frontier:
            rows = [labels.ranks[w] for w in frontier]
            counts = np.fromiter((len(r) for r in rows),
                                 dtype=np.int64, count=len(rows))
            known = np.full(len(frontier), _INF, dtype=np.float64)
            if int(counts.sum()):
                flat_ranks = np.concatenate(
                    [np.asarray(r, dtype=np.int64)
                     for r in rows if len(r)])
                flat_dists = np.concatenate(
                    [np.asarray(labels.dists[w], dtype=np.float64)
                     for w, r in zip(frontier, rows) if len(r)])
                offsets = np.concatenate(
                    (np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))
                known[counts > 0] = np.minimum.reduceat(
                    covered_by_rank[flat_ranks] + flat_dists,
                    offsets[counts > 0])
            collected: List[int] = []
            for w, best in zip(frontier, known):
                if w == root or best <= depth:
                    continue
                labels.set_entry(w, root_rank, depth)
                for z in neighbors(w):
                    collected.append(int(z))
            if collected:
                frontier = np.unique(
                    np.asarray(collected, dtype=np.int64)).tolist()
            else:
                frontier = []
            depth += 1
    finally:
        covered_by_rank[scattered] = _INF


def _resume_pruned_bfs_scalar(labels: MutableLabels,
                              neighbors: NeighborFn, root_rank: int,
                              start: int, start_dist: int) -> None:
    """Per-vertex reference for :func:`_resume_pruned_bfs`.

    Kept for the property tests and the before/after benchmark; both
    walks label the identical entry set (duplicates in the scalar
    queue are pruned by the same ``known <= depth`` test that the
    frontier version's dedup removes).
    """
    root = int(labels.order[root_rank])
    queue = deque([(start, start_dist)])
    while queue:
        w, dw = queue.popleft()
        known = labels.distance(root, w)
        if known is not None and known <= dw:
            continue
        labels.set_entry(w, root_rank, dw)
        for z in neighbors(w):
            queue.append((int(z), dw + 1))


def touches_phantom_edge(labels: MutableLabels, s: int, t: int, d: int,
                         phantom: Iterable[Edge]) -> bool:
    """True if some phantom edge lies on a label-shortest s-t path.

    Edge ``(a, b)`` is on one iff it is crossed by some shortest path,
    i.e. ``d(s,a) + 1 + d(b,t) = d`` in one of the two orientations.
    When no phantom edge touches, every label-shortest path survives
    in the current graph and the label answer stands; otherwise the
    pair is *poisoned* and must be validated.
    """
    to_s: Dict[int, Optional[int]] = {}
    to_t: Dict[int, Optional[int]] = {}

    def d_s(x: int) -> Optional[int]:
        if x not in to_s:
            to_s[x] = labels.distance(s, x)
        return to_s[x]

    def d_t(x: int) -> Optional[int]:
        if x not in to_t:
            to_t[x] = labels.distance(x, t)
        return to_t[x]

    for a, b in phantom:
        dsa, dbt = d_s(a), d_t(b)
        if dsa is not None and dbt is not None and dsa + 1 + dbt == d:
            return True
        dsb, dat = d_s(b), d_t(a)
        if dsb is not None and dat is not None and dsb + 1 + dat == d:
            return True
    return False


def guided_levels(labels: MutableLabels, neighbors: NeighborFn,
                  s: int, t: int, d: int) -> Dict[int, int]:
    """Label-guided BFS from ``s`` towards ``t`` over ``neighbors``.

    Walks the *current* graph (pass current adjacency) but only
    through vertices the labels place on a shortest ``s``-``t`` path
    at the matching depth: ``x`` is admitted at level ``k`` iff
    ``d_label(s, x) = k`` and ``d_label(x, t) = d - k``. Returns
    ``{vertex: level}`` for every admitted vertex.

    Reading the result: ``t`` present (at level ``d``) iff the current
    distance still equals ``d``; and against a second sweep from ``t``,
    ``levels_s[x] + 1 + levels_t[y] = d`` characterizes exactly the
    current SPG edges (module docstring).
    """
    levels = {s: 0}
    rejected = set()
    frontier = [s]
    for k in range(d):
        next_frontier: List[int] = []
        for x in frontier:
            for z in neighbors(x):
                z = int(z)
                if z in levels or z in rejected:
                    continue
                if labels.distance(s, z) != k + 1 \
                        or labels.distance(z, t) != d - k - 1:
                    # Levels only grow, so a vertex that fails its
                    # first reachable level can never be admitted.
                    rejected.add(z)
                    continue
                levels[z] = k + 1
                next_frontier.append(z)
        if not next_frontier:
            break
        frontier = next_frontier
    return levels
