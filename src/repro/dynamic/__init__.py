"""Dynamic updates: incremental index maintenance on evolving graphs.

Layers a mutable-graph capability on the engine:

* :class:`DeltaGraph` — frozen CSR base + insert/delete edge overlay,
  answering the same adjacency surface as
  :class:`~repro.graph.csr.Graph`;
* :class:`DynamicIndex` — the engine family ``"dynamic"``: PPL or
  ParentPPL labels repaired in place on insertion, deletion handled by
  phantom-edge poisoning with guided re-validation, automatic rebuild
  past a staleness threshold, oracle-exact answers throughout.

See :mod:`repro.workloads.updates` for mixed update/query stream
generation and the CLI ``update`` subcommand for file-driven replay.
"""

from .delta import DeltaGraph
from .incremental import MutableLabels, guided_levels, repair_insert
from .index import DYNAMIC_FAMILIES, DynamicIndex

__all__ = [
    "DeltaGraph",
    "DynamicIndex",
    "DYNAMIC_FAMILIES",
    "MutableLabels",
    "repair_insert",
    "guided_levels",
]
