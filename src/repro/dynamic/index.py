"""`DynamicIndex` — a full `PathIndex` that stays exact under updates.

The dynamic subsystem's public face: an engine-registered family
(``"dynamic"``) layering three pieces on the PR-1 engine:

* a :class:`~repro.dynamic.delta.DeltaGraph` holding the current graph
  as a frozen base plus an insert/delete overlay;
* incrementally maintained PPL or ParentPPL labels
  (:mod:`repro.dynamic.incremental`): edge insertions repair the
  labels by resumed pruned BFS; deletions leave *phantom* edges behind
  and poison the pairs whose label-shortest paths crossed them;
* a query layer that serves clean pairs straight from the labels,
  re-validates poisoned pairs with a label-guided delta-BFS, and
  falls back to plain BFS only for pairs whose distance genuinely
  changed — so answers are **always oracle-exact** on the current
  graph.

A staleness policy caps how far the structure may drift: after
``rebuild_threshold`` applied mutations the labels are rebuilt from
the current snapshot (amortized, the rebuild is the same work a
build-once deployment would redo on *every* update). All counters —
inserts, removes, rebuilds, repaired entries, validated and
fallen-back queries — surface through :attr:`stats`, and
:attr:`version` feeds the engine's query-cache invalidation.

SPG queries do not use the recursive label resolution of the static
families: exactness there leans on the 2-hop *path* cover, which
incremental repair does not preserve. Instead the SPG is extracted
from two guided level sweeps using distances alone — exact whenever
the labels' distances are (module docstring of
:mod:`~repro.dynamic.incremental`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from .._util import UNREACHED, Stopwatch
from ..baselines.oracle import spg_oracle
from ..core.spg import ShortestPathGraph
from ..engine.base import PathIndex
from ..engine.batch import cached_label_arrays, distances_to_float, \
    finalize_distances, pairs_to_arrays, two_hop_distance_many
from ..engine.families import (
    ParentPplPathIndex,
    PplPathIndex,
    _flatten_ragged,
    _graph_arrays,
    _graph_from_arrays,
    _split_ragged,
)
from ..engine.registry import build_index, register_index
from ..errors import IndexBuildError, IndexFormatError, QueryError
from ..graph.csr import Graph
from ..graph.traversal import bfs_distances
from ..obs import get_registry, span
from .delta import DeltaGraph, normalize_edge
from .incremental import (
    MutableLabels,
    guided_levels,
    repair_insert,
    touches_phantom_edge,
)

__all__ = ["DynamicIndex", "DYNAMIC_FAMILIES"]

Edge = Tuple[int, int]

#: Label families the dynamic maintenance supports.
DYNAMIC_FAMILIES = ("ppl", "parent-ppl")

#: Mutation kinds accepted by :meth:`DynamicIndex.apply_batch`.
_INSERT_KINDS = frozenset({"insert", "+"})
_REMOVE_KINDS = frozenset({"delete", "remove", "-"})

#: Largest endpoint-x-phantom-endpoint grid the batched poisoning
#: screen will materialize; beyond it the screen runs per pair.
_SCREEN_GRID_LIMIT = 5_000_000


def _copied_rows(rows) -> List[List[int]]:
    """Per-vertex rows as fresh plain-int lists (deep copy)."""
    return [row.tolist() if hasattr(row, "tolist") else list(row)
            for row in rows]


def _ensure_mutable(inner) -> None:
    """Promote ``inner``'s label containers to plain mutable lists.

    The kernel-built families hold labels as flat CSR arrays behind
    ``RaggedView`` rows; incremental repair mutates per-vertex lists in
    place, so convert once at wrap time and drop the flat fast-path
    state (it would go stale on the first repaired entry).
    """
    if not (isinstance(inner._label_ranks, list)
            and all(isinstance(r, list) for r in inner._label_ranks)):
        inner._label_ranks = _copied_rows(inner._label_ranks)
        inner._label_dists = _copied_rows(inner._label_dists)
    parents = getattr(inner, "_label_parents", None)
    if parents is not None and not isinstance(parents, list):
        inner._label_parents = [list(row) for row in parents]
    inner._flat_labels = None
    inner._label_arrays_cache = None


@register_index("dynamic")
class DynamicIndex(PathIndex):
    """Incrementally maintained path index over a mutable graph."""

    def __init__(self, inner, family: str,
                 rebuild_threshold: Optional[int]) -> None:
        if family not in DYNAMIC_FAMILIES:
            raise IndexBuildError(
                f"dynamic maintenance supports families "
                f"{DYNAMIC_FAMILIES}, not {family!r}"
            )
        self._inner = inner
        self._family = family
        _ensure_mutable(inner)
        self._labels = MutableLabels(
            inner._order, inner._label_ranks, inner._label_dists,
            getattr(inner, "_label_parents", None),
        )
        self._delta = DeltaGraph(inner._graph)
        self._phantom: Set[Edge] = set()
        self._phantom_adj: Dict[int, List[int]] = {}
        self.rebuild_threshold = rebuild_threshold
        self._version = 0
        self._ops_since_rebuild = 0
        self._counters = {
            "inserts": 0, "removes": 0, "noops": 0, "rebuilds": 0,
            "validated_queries": 0, "fallback_queries": 0,
        }
        # Registry mirrors of the local counters above: `_count` bumps
        # both, so `stats` (absolute, persisted with the index) and the
        # process-wide `/metrics` series stay in step.
        registry = get_registry()
        self._m_counters = {
            key: registry.counter(f"dynamic_{key}_total",
                                  help="Dynamic-index event counter.")
            for key in self._counters}
        self._m_update_seconds = registry.histogram(
            "dynamic_update_seconds",
            help="Wall time of one applied insert/remove repair.")

    def _count(self, key: str) -> None:
        """Bump a local counter and its process-registry mirror."""
        self._counters[key] += 1
        self._m_counters[key].inc()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: Graph, *, family: str = "ppl",
              rebuild_threshold: Optional[int] = None,
              **params) -> "DynamicIndex":
        """Build the underlying label family, then wrap it.

        ``params`` pass through to the family's ``build``; the PPL
        ``variant`` must stay ``"sound"`` — incremental repair (and
        the guided query layer) assume the labels are an exact
        distance cover, which the paper-verbatim variant is not.
        """
        if params.get("variant", "sound") != "sound":
            raise IndexBuildError(
                "dynamic maintenance requires the sound label variant"
            )
        inner = build_index(graph, family, **params)
        return cls(inner, family, rebuild_threshold)

    @classmethod
    def from_static(cls, index, *,
                    rebuild_threshold: Optional[int] = None
                    ) -> "DynamicIndex":
        """Promote a built PPL/ParentPPL index without rebuilding.

        Label lists are deep-copied so the static index keeps serving
        unchanged while the dynamic copy mutates.
        """
        families = {PplPathIndex: "ppl", ParentPplPathIndex: "parent-ppl"}
        family = families.get(type(index))
        if family is None:
            raise IndexBuildError(
                f"cannot promote a {type(index).__name__} to a "
                f"DynamicIndex; build one of {DYNAMIC_FAMILIES} first"
            )
        clone_args = [index._graph, index._order.copy(),
                      _copied_rows(index._label_ranks),
                      _copied_rows(index._label_dists)]
        if family == "parent-ppl":
            clone_args.append([list(x) for x in index._label_parents])
        inner = type(index)(*clone_args)
        return cls(inner, family, rebuild_threshold)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    @property
    def rebuild_threshold(self) -> int:
        """Applied mutations tolerated before a full label rebuild.

        ``0`` disables automatic rebuilds; the default scales with the
        base size (an eighth of the base edges, at least 64).
        """
        return self._rebuild_threshold

    @rebuild_threshold.setter
    def rebuild_threshold(self, value: Optional[int]) -> None:
        if value is None:
            value = max(64, self._inner._graph.num_edges // 8)
        if value < 0:
            raise IndexBuildError("rebuild_threshold must be >= 0")
        self._rebuild_threshold = int(value)

    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge ``{u, v}`` and repair the labels incrementally.

        Returns ``False`` when the edge was already present (a no-op).
        """
        if not self._delta.insert_edge(u, v):
            self._count("noops")
            return False
        self._version += 1
        self._count("inserts")
        edge = normalize_edge(u, v)
        with span("dynamic.insert_repair"), Stopwatch() as sw:
            if edge in self._phantom:
                # A deleted edge coming back: the labels never stopped
                # accounting for it, so un-poisoning it is the whole
                # repair.
                self._drop_phantom(edge)
            else:
                repair_insert(self._labels, self._label_neighbors, u, v)
        self._m_update_seconds.observe(sw.elapsed)
        self._bump_and_maybe_rebuild()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge ``{u, v}``, leaving a phantom for the labels.

        Returns ``False`` when the edge was not present (a no-op).
        """
        if not self._delta.remove_edge(u, v):
            self._count("noops")
            return False
        self._version += 1
        self._count("removes")
        edge = normalize_edge(u, v)
        with Stopwatch() as sw:
            self._phantom.add(edge)
            self._phantom_adj.setdefault(edge[0], []).append(edge[1])
            self._phantom_adj.setdefault(edge[1], []).append(edge[0])
        self._m_update_seconds.observe(sw.elapsed)
        self._bump_and_maybe_rebuild()
        return True

    def apply_batch(self, operations) -> Dict[str, int]:
        """Apply ``(kind, u, v)`` mutations in order; returns counts.

        ``kind`` is ``"insert"``/``"+"`` or ``"delete"``/``"remove"``/
        ``"-"`` (query operations in a mixed stream are the caller's
        to answer — see the CLI ``update`` command).
        """
        applied = noops = 0
        for kind, u, v in operations:
            if kind in _INSERT_KINDS:
                changed = self.insert_edge(u, v)
            elif kind in _REMOVE_KINDS:
                changed = self.remove_edge(u, v)
            else:
                raise QueryError(
                    f"unknown update operation {kind!r}; expected "
                    f"insert/delete"
                )
            applied += changed
            noops += not changed
        return {"applied": applied, "noops": noops,
                "rebuilds": self._counters["rebuilds"]}

    def rebuild(self) -> None:
        """Rebuild the labels from the current snapshot, clearing the
        delta and every phantom edge."""
        snapshot = self._delta.snapshot()
        with span("dynamic.rebuild"):
            self._inner = build_index(snapshot, self._family)
        _ensure_mutable(self._inner)
        self._labels = MutableLabels(
            self._inner._order, self._inner._label_ranks,
            self._inner._label_dists,
            getattr(self._inner, "_label_parents", None),
        )
        self._delta = DeltaGraph(snapshot)
        self._phantom.clear()
        self._phantom_adj.clear()
        self._ops_since_rebuild = 0
        self._count("rebuilds")
        # The labels were replaced wholesale (and the fresh
        # repaired-entries counter may coincide with the old one);
        # the batch kernel's flat-array cache must not outlive them.
        self._label_arrays_cache = None

    def _bump_and_maybe_rebuild(self) -> None:
        self._ops_since_rebuild += 1
        if self._rebuild_threshold \
                and self._ops_since_rebuild >= self._rebuild_threshold:
            self.rebuild()

    def _drop_phantom(self, edge: Edge) -> None:
        self._phantom.discard(edge)
        for a, b in (edge, edge[::-1]):
            row = self._phantom_adj.get(a)
            if row is not None:
                row.remove(b)
                if not row:
                    del self._phantom_adj[a]

    # ------------------------------------------------------------------
    # Adjacency callbacks
    # ------------------------------------------------------------------

    def _label_neighbors(self, v: int):
        """Adjacency of the labels' graph: current plus phantom edges."""
        row = self._delta.neighbors(v)
        extra = self._phantom_adj.get(v)
        if not extra:
            return row
        return np.concatenate(
            (row, np.asarray(extra, dtype=np.int32)))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def distance(self, u: int, v: int) -> Optional[int]:
        self._delta._check_vertex(u)
        self._delta._check_vertex(v)
        return self._resolve_distance(u, v)[0]

    def distance_many(self, pairs) -> List[Optional[int]]:
        """Batched distances: one label kernel + per-pair delta check.

        The maintained labels answer the whole batch through the
        vectorized 2-hop kernel (their graph is a supergraph of the
        current one, so ``inf`` there is disconnection here, exactly).
        With phantom edges pending, each finite answer is screened by
        the usual poisoning test — edge ``(a, b)`` poisons ``(u, v)``
        iff ``d(u,a) + 1 + d(b,v) = d`` in some orientation — but the
        screen itself is batched: one kernel call answers the whole
        endpoint-to-phantom-endpoint distance grid, and the test runs
        as vectorized comparisons per phantom edge. Only genuinely
        poisoned pairs re-validate through the scalar path — clean
        pairs, the common case, never leave the kernel.
        """
        labels = self._labels
        us, vs = pairs_to_arrays(pairs, self._delta.num_vertices)
        # Keyed on the label-mutation counter, not the index version:
        # deletions only poison (labels untouched), so they must not
        # force an O(size(L)) re-flatten before the next batch.
        flat = cached_label_arrays(self, labels.ranks, labels.dists,
                                   labels.repaired_entries)
        results = finalize_distances(
            two_hop_distance_many(flat, us, vs))
        if not self._phantom:
            return results
        unique, inverse = np.unique(np.concatenate((us, vs)),
                                    return_inverse=True)
        phantom_vertices = sorted({x for edge in self._phantom
                                   for x in edge})
        if len(unique) * len(phantom_vertices) > _SCREEN_GRID_LIMIT:
            # Screening grid too large to materialize; screen per pair.
            for b, d in enumerate(results):
                if d is None or us[b] == vs[b]:
                    continue
                u, v = int(us[b]), int(vs[b])
                if touches_phantom_edge(labels, u, v, d,
                                        self._phantom):
                    results[b] = self._resolve_distance(u, v)[0]
            return results
        grid = two_hop_distance_many(
            flat,
            np.repeat(unique, len(phantom_vertices)),
            np.tile(np.asarray(phantom_vertices, dtype=np.int64),
                    len(unique)),
        ).reshape(len(unique), len(phantom_vertices))
        column = {x: j for j, x in enumerate(phantom_vertices)}
        to_u = grid[inverse[:len(us)]]
        to_v = grid[inverse[len(us):]]
        label_d = distances_to_float(results)
        poisoned = np.zeros(len(us), dtype=bool)
        for a, b in self._phantom:
            col_a, col_b = column[a], column[b]
            poisoned |= to_u[:, col_a] + 1.0 + to_v[:, col_b] == label_d
            poisoned |= to_u[:, col_b] + 1.0 + to_v[:, col_a] == label_d
        poisoned &= np.isfinite(label_d) & (us != vs)
        for b in np.nonzero(poisoned)[0].tolist():
            results[b] = self._resolve_distance(int(us[b]),
                                                int(vs[b]))[0]
        return results

    def _resolve_distance(self, u: int, v: int
                          ) -> Tuple[Optional[int], bool,
                                     Optional[Dict[int, int]]]:
        """``(current distance, labels_exact, levels_from_u)``.

        ``labels_exact`` is True when the label distance is the current
        distance (clean pair, or poisoned pair that validated), so the
        guided SPG extraction applies; False means the pair fell back
        to plain BFS on the snapshot. ``levels_from_u`` hands the
        validation sweep to :meth:`query` where one already ran, so a
        poisoned-but-validated SPG query does not redo it.
        """
        if u == v:
            return 0, True, None
        d = self._labels.distance(u, v)
        if d is None:
            # The labels' graph is a supergraph of the current one, so
            # disconnected there means disconnected here.
            return None, True, None
        if not self._phantom:
            return d, True, None
        if not touches_phantom_edge(self._labels, u, v, d, self._phantom):
            return d, True, None
        self._count("validated_queries")
        with span("dynamic.validate"):
            levels = guided_levels(self._labels, self._delta.neighbors,
                                   u, v, d)
        if levels.get(v) == d:
            return d, True, levels
        self._count("fallback_queries")
        with span("dynamic.fallback_bfs"):
            fallback = int(bfs_distances(self._delta.snapshot(), u)[v])
        return (None if fallback == UNREACHED else fallback), False, None

    def query(self, u: int, v: int) -> ShortestPathGraph:
        self._delta._check_vertex(u)
        self._delta._check_vertex(v)
        if u == v:
            return ShortestPathGraph.trivial(u)
        d, labels_exact, from_u = self._resolve_distance(u, v)
        if d is None:
            return ShortestPathGraph.empty(u, v)
        if not labels_exact:
            return spg_oracle(self._delta.snapshot(), u, v)
        if from_u is None:
            from_u = guided_levels(self._labels, self._delta.neighbors,
                                   u, v, d)
        from_v = guided_levels(self._labels, self._delta.neighbors,
                               v, u, d)
        edges = set()
        for x, depth_x in from_u.items():
            for y in self._delta.neighbors(x):
                depth_y = from_v.get(int(y))
                if depth_y is not None and depth_x + 1 + depth_y == d:
                    edges.add(normalize_edge(x, int(y)))
        return ShortestPathGraph(u, v, d, edges)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The *current* graph (materialized snapshot of the overlay)."""
        return self._delta.snapshot()

    @property
    def num_vertices(self) -> int:
        """Vertex count without materializing the snapshot."""
        return self._delta.num_vertices

    @property
    def delta(self) -> DeltaGraph:
        """The mutable overlay; mutate through the index, not here."""
        return self._delta

    @property
    def family(self) -> str:
        return self._family

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every applied insert/remove."""
        return self._version

    @property
    def size_bytes(self) -> int:
        """Labels under the family's paper model plus 8 bytes per
        overlay edge (added and phantom)."""
        overlay = len(self._delta.added_edges()) + len(self._phantom)
        return self._inner.paper_size_bytes() + 8 * overlay

    @property
    def stats(self) -> Dict[str, Any]:
        base = PathIndex.stats.fget(self)
        base.update({
            "family": self._family,
            "base_edges": self._delta.base.num_edges,
            "added_edges": len(self._delta.added_edges()),
            "phantom_edges": len(self._phantom),
            "label_entries": self._labels.num_entries(),
            "repaired_entries": self._labels.repaired_entries,
            "version": self._version,
            "rebuild_threshold": self._rebuild_threshold,
            "ops_since_rebuild": self._ops_since_rebuild,
            **self._counters,
        })
        return base

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self):
        labels = self._labels
        rank_offsets, flat_ranks = _flatten_ragged(labels.ranks, np.int64)
        _, flat_dists = _flatten_ragged(labels.dists, np.int32)
        arrays = {
            **_graph_arrays(self._delta.base),
            "order": labels.order,
            "label_offsets": rank_offsets,
            "label_ranks": flat_ranks,
            "label_dists": flat_dists,
            "added": _edge_rows(self._delta.added_edges()),
            "phantom": _edge_rows(sorted(self._phantom)),
        }
        if labels.parents is not None:
            entry_parents = [parents for per_vertex in labels.parents
                             for parents in per_vertex]
            parent_offsets, flat_parents = _flatten_ragged(entry_parents,
                                                           np.int32)
            arrays["parent_offsets"] = parent_offsets
            arrays["parents"] = flat_parents
        meta = {
            "family": self._family,
            "rebuild_threshold": self._rebuild_threshold,
            "version": self._version,
            "ops_since_rebuild": self._ops_since_rebuild,
            "counters": dict(self._counters),
            "repaired_entries": labels.repaired_entries,
        }
        return meta, arrays

    @classmethod
    def from_state(cls, meta, arrays) -> "DynamicIndex":
        family = meta.get("family")
        if family not in DYNAMIC_FAMILIES:
            raise IndexFormatError(
                f"dynamic archive names unsupported family {family!r}"
            )
        graph = _graph_from_arrays(arrays)
        offsets = arrays["label_offsets"]
        order = arrays["order"].astype(np.int64)
        label_ranks = _split_ragged(offsets, arrays["label_ranks"])
        label_dists = _split_ragged(offsets, arrays["label_dists"])
        if family == "parent-ppl":
            entry_parents = _split_ragged(arrays["parent_offsets"],
                                          arrays["parents"])
            label_parents: List[List[Tuple[int, ...]]] = []
            cursor = 0
            for ranks in label_ranks:
                label_parents.append([tuple(entry_parents[cursor + k])
                                      for k in range(len(ranks))])
                cursor += len(ranks)
            inner = ParentPplPathIndex(graph, order, label_ranks,
                                       label_dists, label_parents)
        else:
            inner = PplPathIndex(graph, order, label_ranks, label_dists)
        index = cls(inner, family, meta.get("rebuild_threshold"))
        for u, v in arrays["added"].tolist():
            index._delta.insert_edge(int(u), int(v))
        for u, v in arrays["phantom"].tolist():
            edge = normalize_edge(int(u), int(v))
            if graph.has_edge(*edge):
                index._delta.remove_edge(*edge)
            index._phantom.add(edge)
            index._phantom_adj.setdefault(edge[0], []).append(edge[1])
            index._phantom_adj.setdefault(edge[1], []).append(edge[0])
        index._version = int(meta.get("version", 0))
        index._ops_since_rebuild = int(meta.get("ops_since_rebuild", 0))
        index._counters.update(meta.get("counters", {}))
        index._labels.repaired_entries = int(
            meta.get("repaired_entries", 0))
        return index


def _edge_rows(edges: List[Edge]) -> np.ndarray:
    if not edges:
        return np.zeros((0, 2), dtype=np.int32)
    return np.asarray(edges, dtype=np.int32)
