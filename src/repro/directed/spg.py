"""Directed shortest path graph result type."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..errors import QueryError

__all__ = ["DirectedSPG"]

Arc = Tuple[int, int]


class DirectedSPG:
    """All shortest directed ``source -> target`` paths, as an arc set.

    The directed analogue of
    :class:`repro.core.spg.ShortestPathGraph`; arcs keep their
    orientation.
    """

    __slots__ = ("source", "target", "distance", "_arcs")

    def __init__(self, source: int, target: int,
                 distance: Optional[int], arcs) -> None:
        self.source = int(source)
        self.target = int(target)
        self.distance = None if distance is None else int(distance)
        self._arcs: FrozenSet[Arc] = frozenset(
            (int(a), int(b)) for a, b in arcs
        )
        if self.distance in (None, 0) and self._arcs:
            raise QueryError(
                "an SPG with no path (or a trivial one) cannot have arcs"
            )

    @classmethod
    def trivial(cls, vertex: int) -> "DirectedSPG":
        return cls(vertex, vertex, 0, ())

    @classmethod
    def empty(cls, source: int, target: int) -> "DirectedSPG":
        return cls(source, target, None, ())

    @property
    def arcs(self) -> FrozenSet[Arc]:
        return self._arcs

    @property
    def vertices(self) -> Set[int]:
        result = {self.source, self.target}
        for a, b in self._arcs:
            result.add(a)
            result.add(b)
        return result

    @property
    def num_arcs(self) -> int:
        return len(self._arcs)

    def levels(self) -> Dict[int, int]:
        """Exact distance-from-source of every SPG vertex."""
        from collections import deque

        successors = defaultdict(list)
        for a, b in self._arcs:
            successors[a].append(b)
        level = {self.source: 0}
        queue = deque([self.source])
        while queue:
            x = queue.popleft()
            for y in successors[x]:
                if y not in level:
                    level[y] = level[x] + 1
                    queue.append(y)
        return level

    def count_paths(self) -> int:
        """Number of distinct shortest paths (DAG dynamic program)."""
        if self.distance is None:
            return 0
        if self.distance == 0:
            return 1
        level = self.levels()
        successors = defaultdict(list)
        for a, b in self._arcs:
            successors[a].append(b)
        ways = defaultdict(int)
        ways[self.source] = 1
        for x in sorted(level, key=level.get):
            for y in successors[x]:
                if level.get(y) == level[x] + 1:
                    ways[y] += ways[x]
        return ways[self.target]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedSPG):
            return NotImplemented
        return (self.source == other.source
                and self.target == other.target
                and self.distance == other.distance
                and self._arcs == other._arcs)

    def __hash__(self) -> int:
        return hash((self.source, self.target, self.distance, self._arcs))

    def __repr__(self) -> str:
        return (f"DirectedSPG({self.source} -> {self.target}, "
                f"distance={self.distance}, arcs={len(self._arcs)})")
