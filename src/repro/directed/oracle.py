"""Ground-truth directed SPG via forward + backward BFS."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import UNREACHED
from ..graph.traversal import expand_frontier
from .digraph import DiGraph
from .spg import DirectedSPG

__all__ = ["directed_bfs", "directed_spg_oracle"]


def directed_bfs(graph: DiGraph, source: int, forward: bool = True,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """BFS distances along arcs (``forward``) or against them."""
    graph._check_vertex(source)
    n = graph.num_vertices
    if out is None:
        dist = np.full(n, UNREACHED, dtype=np.int32)
    else:
        dist = out
        dist.fill(UNREACHED)
    dist[source] = 0
    if forward:
        indptr, indices = graph.out_indptr, graph.out_indices
    else:
        indptr, indices = graph.in_indptr, graph.in_indices
    frontier = np.array([source], dtype=np.int32)
    depth = 0
    while len(frontier):
        depth += 1
        neighbors = expand_frontier(indptr, indices, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = depth
        frontier = fresh
    return dist


def directed_spg_oracle(graph: DiGraph, u: int, v: int) -> DirectedSPG:
    """All arcs on shortest directed ``u -> v`` paths (edge predicate:
    ``dist_from_u[x] + 1 + dist_to_v[y] == d(u, v)`` for arc (x, y))."""
    graph._check_vertex(u)
    graph._check_vertex(v)
    if u == v:
        return DirectedSPG.trivial(u)
    dist_u = directed_bfs(graph, u, forward=True)
    if dist_u[v] == UNREACHED:
        return DirectedSPG.empty(u, v)
    distance = int(dist_u[v])
    dist_v = directed_bfs(graph, v, forward=False)
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int32),
                    np.diff(graph.out_indptr))
    dst = graph.out_indices
    reach = (dist_u[src] != UNREACHED) & (dist_v[dst] != UNREACHED)
    on_path = reach & (dist_u[src] + 1 + dist_v[dst] == distance)
    arcs = map(tuple, np.column_stack((src[on_path],
                                       dst[on_path])).tolist())
    return DirectedSPG(u, v, distance, arcs)
