"""Directed Query-by-Sketch.

The extension the paper claims in §2 ("our work can be easily extended
to directed ... graphs"), built out in full:

* **Labelling** — per landmark ``r``, one *forward* labelled BFS
  (along arcs) producing ``F[v] = d(r -> v)`` for vertices with a
  landmark-avoiding shortest path from ``r``, and one *backward*
  labelled BFS (against arcs) producing ``B[v] = d(v -> r)``. Both use
  the two-queue discipline of Algorithm 2. Landmarks discovered on the
  labelled side become *meta arcs* with exact distances.
* **Sketch** — for a query ``u -> v``, broadcast
  ``B[u][:, None] + d_M + F[v][None, :]`` over the directed meta
  distance matrix; the minimum is the length of the best
  landmark-passing route (the directed Eq. 3).
* **Guided search** — forward BFS from ``u`` and backward BFS from
  ``v`` on the landmark-free subgraph, bounded by ``d_top``; reverse
  and recover searches assemble the directed SPG exactly as in the
  undirected Algorithm 4, with predecessor/successor roles split by
  side.

Queries with landmark endpoints fall back to the exact double-BFS
oracle, mirroring the undirected index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path as _sp_shortest_path

from .._util import NO_LABEL, UNREACHED
from ..errors import IndexBuildError
from ..graph.traversal import expand_frontier
from .digraph import DiGraph
from .oracle import directed_spg_oracle
from .spg import DirectedSPG

__all__ = ["DirectedQbSIndex"]

Arc = Tuple[int, int]

#: uint8 sentinel distance cap, as in the undirected labelling.
_MAX_DIST = 254


# ----------------------------------------------------------------------
# Labelling
# ----------------------------------------------------------------------

def _labelled_bfs(indptr: np.ndarray, indices: np.ndarray, root: int,
                  is_landmark: np.ndarray,
                  column: np.ndarray) -> List[Tuple[int, int]]:
    """One directed two-queue BFS (Algorithm 2 over one orientation).

    Fills ``column`` with distances of labelled vertices and returns
    landmark hits as ``(landmark_vertex, distance)``.
    """
    visited = np.zeros(len(is_landmark), dtype=bool)
    visited[root] = True
    labelled = np.array([root], dtype=np.int32)
    silent = np.empty(0, dtype=np.int32)
    hits: List[Tuple[int, int]] = []
    depth = 0
    while len(labelled) or len(silent):
        depth += 1
        if depth > _MAX_DIST:
            raise IndexBuildError(
                f"directed BFS from {root} exceeded uint8 distance cap"
            )
        fresh = expand_frontier(indptr, indices, labelled)
        fresh = np.unique(fresh[~visited[fresh]])
        visited[fresh] = True
        landmark_hits = fresh[is_landmark[fresh]]
        labelled_next = fresh[~is_landmark[fresh]]
        column[labelled_next] = depth
        for hit in landmark_hits:
            hits.append((int(hit), depth))
        silent_fresh = expand_frontier(indptr, indices, silent)
        silent_fresh = np.unique(silent_fresh[~visited[silent_fresh]])
        visited[silent_fresh] = True
        labelled = labelled_next
        silent = np.concatenate((landmark_hits, silent_fresh))
    return hits


@dataclass
class _DirectedScheme:
    """Labels and meta-graph of a directed index."""

    landmarks: np.ndarray
    position: np.ndarray                 # vertex -> landmark position
    forward: np.ndarray                  # F[v, i] = d(r_i -> v)
    backward: np.ndarray                 # B[v, i] = d(v -> r_i)
    meta_arcs: Dict[Arc, int] = field(default_factory=dict)
    meta_dist: Optional[np.ndarray] = None

    def is_landmark(self, v: int) -> bool:
        return self.position[v] >= 0


def _build_scheme(graph: DiGraph, landmarks: np.ndarray) -> _DirectedScheme:
    n = graph.num_vertices
    if len(landmarks) == 0:
        raise IndexBuildError("landmark set must be non-empty")
    if len(np.unique(landmarks)) != len(landmarks):
        raise IndexBuildError("duplicate landmarks")
    if landmarks.min() < 0 or landmarks.max() >= n:
        raise IndexBuildError("landmark id out of range")
    position = np.full(n, -1, dtype=np.int32)
    position[landmarks] = np.arange(len(landmarks), dtype=np.int32)
    is_landmark = position >= 0

    forward = np.full((n, len(landmarks)), NO_LABEL, dtype=np.uint8)
    backward = np.full((n, len(landmarks)), NO_LABEL, dtype=np.uint8)
    meta: Dict[Arc, int] = {}
    for i, root in enumerate(landmarks):
        root = int(root)
        # Forward: r -> v distances; hits are meta arcs r -> r'.
        for hit, weight in _labelled_bfs(graph.out_indptr,
                                         graph.out_indices, root,
                                         is_landmark, forward[:, i]):
            _merge_arc(meta, (i, int(position[hit])), weight)
        # Backward: v -> r distances; hits are meta arcs r' -> r.
        for hit, weight in _labelled_bfs(graph.in_indptr,
                                         graph.in_indices, root,
                                         is_landmark, backward[:, i]):
            _merge_arc(meta, (int(position[hit]), i), weight)
    scheme = _DirectedScheme(landmarks=landmarks, position=position,
                             forward=forward, backward=backward,
                             meta_arcs=meta)
    scheme.meta_dist = _meta_distances(meta, len(landmarks))
    return scheme


def _merge_arc(meta: Dict[Arc, int], key: Arc, weight: int) -> None:
    existing = meta.get(key)
    if existing is not None and existing != weight:
        raise IndexBuildError(
            f"inconsistent directed meta arc {key}: {existing} vs {weight}"
        )
    meta[key] = weight


def _meta_distances(arcs: Dict[Arc, int], count: int) -> np.ndarray:
    if not arcs:
        dist = np.full((count, count), np.inf)
        np.fill_diagonal(dist, 0.0)
        return dist
    rows = [a for (a, _b) in arcs]
    cols = [b for (_a, b) in arcs]
    weights = [float(w) for w in arcs.values()]
    matrix = csr_matrix((weights, (rows, cols)), shape=(count, count))
    return _sp_shortest_path(matrix, method="D", directed=True)


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------

class DirectedQbSIndex:
    """Query-by-Sketch over a directed graph."""

    def __init__(self, graph: DiGraph, scheme: _DirectedScheme,
                 sparsified: DiGraph) -> None:
        self._graph = graph
        self._scheme = scheme
        self._sparsified = sparsified

    @classmethod
    def build(cls, graph: DiGraph,
              num_landmarks: int = 20,
              landmarks: Optional[np.ndarray] = None
              ) -> "DirectedQbSIndex":
        """Select landmarks (highest total degree) and build labels."""
        if landmarks is None:
            if num_landmarks < 1:
                raise IndexBuildError("need at least one landmark")
            total = graph.total_degree()
            order = np.argsort(-total, kind="stable")
            landmarks = order[:min(num_landmarks,
                                   graph.num_vertices)].astype(np.int32)
        else:
            landmarks = np.asarray(landmarks, dtype=np.int32)
        scheme = _build_scheme(graph, landmarks)
        sparsified = graph.remove_vertices(landmarks)
        return cls(graph, scheme, sparsified)

    @property
    def landmarks(self) -> np.ndarray:
        return self._scheme.landmarks

    @property
    def graph(self) -> DiGraph:
        return self._graph

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(self, u: int, v: int) -> DirectedSPG:
        """All shortest directed ``u -> v`` paths, exactly."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return DirectedSPG.trivial(u)
        if self._scheme.is_landmark(u) or self._scheme.is_landmark(v):
            return directed_spg_oracle(self._graph, u, v)
        return self._guided_query(u, v)

    def distance(self, u: int, v: int) -> Optional[int]:
        return self.query(u, v).distance

    # ------------------------------------------------------------------
    # Sketch
    # ------------------------------------------------------------------

    def _sketch(self, u: int, v: int):
        """Directed Eq. 3: route lengths ``u -> r -> r' -> v``."""
        scheme = self._scheme
        du = scheme.backward[u].astype(np.float64)
        du[scheme.backward[u] == NO_LABEL] = np.inf
        dv = scheme.forward[v].astype(np.float64)
        dv[scheme.forward[v] == NO_LABEL] = np.inf
        pi = du[:, None] + scheme.meta_dist + dv[None, :]
        d_top_value = float(pi.min()) if pi.size else np.inf
        if not np.isfinite(d_top_value):
            return None, {}, {}, []
        d_top = int(d_top_value)
        side_u: Dict[int, int] = {}
        side_v: Dict[int, int] = {}
        pairs: List[Arc] = []
        rows, cols = np.nonzero(pi == d_top_value)
        for r, r_prime in zip(rows.tolist(), cols.tolist()):
            side_u[r] = int(du[r])
            side_v[r_prime] = int(dv[r_prime])
            pairs.append((r, r_prime))
        return d_top, side_u, side_v, pairs

    # ------------------------------------------------------------------
    # Guided search
    # ------------------------------------------------------------------

    def _guided_query(self, u: int, v: int) -> DirectedSPG:
        d_top, side_u, side_v, pairs = self._sketch(u, v)
        n = self._graph.num_vertices
        depth_u = np.full(n, UNREACHED, dtype=np.int32)
        depth_v = np.full(n, UNREACHED, dtype=np.int32)
        depth_u[u] = 0
        depth_v[v] = 0
        levels_u: List[np.ndarray] = [np.array([u], dtype=np.int32)]
        levels_v: List[np.ndarray] = [np.array([v], dtype=np.int32)]

        d_minus, meeting = self._bidirectional(
            d_top, depth_u, depth_v, levels_u, levels_v
        )
        candidates = [d for d in (d_minus, d_top) if d is not None]
        if not candidates:
            return DirectedSPG.empty(u, v)
        distance = min(candidates)

        arcs: Set[Arc] = set()
        if d_minus is not None and d_minus == distance:
            arcs |= self._descend_to_source(meeting, depth_u)
            arcs |= self._descend_to_target(meeting, depth_v)
        if d_top is not None and d_top == distance:
            arcs |= self._recover(side_u, side_v, pairs, depth_u, depth_v,
                                  levels_u, levels_v)
        return DirectedSPG(u, v, distance, arcs)

    def _bidirectional(self, d_top, depth_u, depth_v, levels_u, levels_v):
        """Alternating forward/backward level BFS on the sparsified
        graph, bounded by ``d_top``."""
        sparsified = self._sparsified
        frontier_u = levels_u[0]
        frontier_v = levels_v[0]
        count_u = count_v = 1
        while d_top is None or len(levels_u) - 1 + len(levels_v) - 1 < d_top:
            expand_u = len(frontier_u) > 0 and (
                len(frontier_v) == 0 or count_u <= count_v
            )
            if len(frontier_u) == 0 and len(frontier_v) == 0:
                return None, None
            if expand_u:
                fresh = expand_frontier(sparsified.out_indptr,
                                        sparsified.out_indices, frontier_u)
                fresh = np.unique(fresh[depth_u[fresh] == UNREACHED])
                depth_u[fresh] = len(levels_u)
                levels_u.append(fresh)
                frontier_u = fresh
                count_u += len(fresh)
                this_depth, other = depth_u, depth_v
            else:
                fresh = expand_frontier(sparsified.in_indptr,
                                        sparsified.in_indices, frontier_v)
                fresh = np.unique(fresh[depth_v[fresh] == UNREACHED])
                depth_v[fresh] = len(levels_v)
                levels_v.append(fresh)
                frontier_v = fresh
                count_v += len(fresh)
                this_depth, other = depth_v, depth_u
            hits = fresh[other[fresh] != UNREACHED]
            if len(hits):
                sums = this_depth[hits] + other[hits]
                d_minus = int(sums.min())
                return d_minus, hits[sums == d_minus]
            if len(fresh) == 0:
                return None, None
        return None, None

    def _descend_to_source(self, seeds, depth_u) -> Set[Arc]:
        """Arcs of shortest paths from the source to ``seeds`` (walk
        predecessors whose forward depth decreases)."""
        sparsified = self._sparsified
        arcs: Set[Arc] = set()
        buckets: Dict[int, Set[int]] = {}
        for x in seeds:
            d = int(depth_u[int(x)])
            if d > 0:
                buckets.setdefault(d, set()).add(int(x))
        if not buckets:
            return arcs
        for d in range(max(buckets), 0, -1):
            for x in buckets.get(d, ()):
                for p in sparsified.predecessors(x):
                    p = int(p)
                    if depth_u[p] == d - 1:
                        arcs.add((p, x))
                        if d - 1 > 0:
                            buckets.setdefault(d - 1, set()).add(p)
        return arcs

    def _descend_to_target(self, seeds, depth_v) -> Set[Arc]:
        """Arcs of shortest paths from ``seeds`` to the target (walk
        successors whose backward depth decreases)."""
        sparsified = self._sparsified
        arcs: Set[Arc] = set()
        buckets: Dict[int, Set[int]] = {}
        for x in seeds:
            d = int(depth_v[int(x)])
            if d > 0:
                buckets.setdefault(d, set()).add(int(x))
        if not buckets:
            return arcs
        for d in range(max(buckets), 0, -1):
            for x in buckets.get(d, ()):
                for s in sparsified.successors(x):
                    s = int(s)
                    if depth_v[s] == d - 1:
                        arcs.add((x, s))
                        if d - 1 > 0:
                            buckets.setdefault(d - 1, set()).add(s)
        return arcs

    def _recover(self, side_u, side_v, pairs, depth_u, depth_v,
                 levels_u, levels_v) -> Set[Arc]:
        """Directed recover search: reassemble landmark routes."""
        scheme = self._scheme
        arcs: Set[Arc] = set()
        d_u = len(levels_u) - 1
        d_v = len(levels_v) - 1
        # u side: u .. w .. r with B decreasing towards r.
        for r_pos, sigma in side_u.items():
            dm = min(sigma - 1, d_u)
            level = levels_u[dm]
            column = scheme.backward[:, r_pos]
            seeds = level[column[level] == sigma - dm]
            if len(seeds) == 0:
                continue
            arcs |= self._descend_to_source(seeds, depth_u)
            arcs |= self._descend_backward_column(seeds, r_pos)
        # v side: r' .. w .. v with F decreasing towards r'.
        for r_pos, sigma in side_v.items():
            dm = min(sigma - 1, d_v)
            level = levels_v[dm]
            column = scheme.forward[:, r_pos]
            seeds = level[column[level] == sigma - dm]
            if len(seeds) == 0:
                continue
            arcs |= self._descend_to_target(seeds, depth_v)
            arcs |= self._descend_forward_column(seeds, r_pos)
        # Landmark-to-landmark structure.
        expanded: Set[Arc] = set()
        for r, r_prime in set(pairs):
            for a, b in self._meta_spg_arcs(r, r_prime):
                if (a, b) in expanded:
                    continue
                expanded.add((a, b))
                arcs |= self._expand_meta_arc(a, b)
        return arcs

    def _descend_backward_column(self, seeds, r_pos: int) -> Set[Arc]:
        """Walk ``w -> ... -> r`` guided by the B label column."""
        scheme = self._scheme
        sparsified = self._sparsified
        landmark = int(scheme.landmarks[r_pos])
        column = scheme.backward[:, r_pos]
        arcs: Set[Arc] = set()
        buckets: Dict[int, Set[int]] = {}
        for w in seeds:
            w = int(w)
            buckets.setdefault(int(column[w]), set()).add(w)
        if not buckets:
            return arcs
        for delta in range(max(buckets), 0, -1):
            for x in buckets.get(delta, ()):
                if delta == 1:
                    arcs.add((x, landmark))
                    continue
                for y in sparsified.successors(x):
                    y = int(y)
                    if column[y] == delta - 1:
                        arcs.add((x, y))
                        buckets.setdefault(delta - 1, set()).add(y)
        return arcs

    def _descend_forward_column(self, seeds, r_pos: int) -> Set[Arc]:
        """Walk ``r' -> ... -> w`` guided by the F label column."""
        scheme = self._scheme
        sparsified = self._sparsified
        landmark = int(scheme.landmarks[r_pos])
        column = scheme.forward[:, r_pos]
        arcs: Set[Arc] = set()
        buckets: Dict[int, Set[int]] = {}
        for w in seeds:
            w = int(w)
            buckets.setdefault(int(column[w]), set()).add(w)
        if not buckets:
            return arcs
        for delta in range(max(buckets), 0, -1):
            for x in buckets.get(delta, ()):
                if delta == 1:
                    arcs.add((landmark, x))
                    continue
                for y in sparsified.predecessors(x):
                    y = int(y)
                    if column[y] == delta - 1:
                        arcs.add((y, x))
                        buckets.setdefault(delta - 1, set()).add(y)
        return arcs

    def _meta_spg_arcs(self, r: int, r_prime: int) -> List[Arc]:
        """Meta arcs on shortest directed ``r -> r'`` meta paths."""
        if r == r_prime:
            return []
        scheme = self._scheme
        target = scheme.meta_dist[r, r_prime]
        if not np.isfinite(target):
            return []
        result = []
        for (a, b), w in scheme.meta_arcs.items():
            if scheme.meta_dist[r, a] + w + scheme.meta_dist[b, r_prime] \
                    == target:
                result.append((a, b))
        return result

    def _expand_meta_arc(self, a_pos: int, b_pos: int) -> FrozenSet[Arc]:
        """Δ for a directed meta arc: landmark-avoiding a -> b SPG."""
        scheme = self._scheme
        a = int(scheme.landmarks[a_pos])
        b = int(scheme.landmarks[b_pos])
        weight = scheme.meta_arcs[(a_pos, b_pos)]
        if weight == 1:
            return frozenset({(a, b)})
        forward_col = scheme.forward[:, a_pos]
        is_landmark = scheme.position >= 0
        arcs: Set[Arc] = set()
        seeds = [
            int(x) for x in self._graph.predecessors(b)
            if not is_landmark[x] and forward_col[x] == weight - 1
        ]
        for x in seeds:
            arcs.add((x, b))
        current: Set[int] = set(seeds)
        for level in range(weight - 1, 0, -1):
            next_level: Set[int] = set()
            for x in current:
                if level == 1:
                    arcs.add((a, x))
                    continue
                for y in self._graph.predecessors(x):
                    y = int(y)
                    if not is_landmark[y] and forward_col[y] == level - 1:
                        arcs.add((y, x))
                        next_level.add(y)
            current = next_level
        return frozenset(arcs)
