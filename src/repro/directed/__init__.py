"""Directed-graph extension of Query-by-Sketch (paper §2 claim)."""

from .digraph import DiGraph
from .oracle import directed_bfs, directed_spg_oracle
from .qbs import DirectedQbSIndex
from .spg import DirectedSPG

__all__ = [
    "DiGraph",
    "DirectedSPG",
    "DirectedQbSIndex",
    "directed_spg_oracle",
    "directed_bfs",
]
