"""Directed graph substrate (dual-CSR).

The paper treats its datasets as undirected but notes (§2) that the
method "can be easily extended to directed ... graphs". This package
is that extension. A :class:`DiGraph` stores both orientations:

* ``out_indptr`` / ``out_indices`` — successors of each vertex;
* ``in_indptr`` / ``in_indices``  — predecessors of each vertex;

so forward BFS (along arcs) and backward BFS (against arcs) are both
CSR-kernel cheap, which the directed labelling and the bidirectional
search need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..errors import GraphValidationError, VertexError

__all__ = ["DiGraph"]


class DiGraph:
    """Undirected-free directed simple graph (no self loops, no
    parallel arcs)."""

    __slots__ = ("_out_indptr", "_out_indices", "_in_indptr",
                 "_in_indices")

    def __init__(self, out_indptr, out_indices, in_indptr, in_indices
                 ) -> None:
        self._out_indptr = np.asarray(out_indptr, dtype=np.int64)
        self._out_indices = np.asarray(out_indices, dtype=np.int32)
        self._in_indptr = np.asarray(in_indptr, dtype=np.int64)
        self._in_indices = np.asarray(in_indices, dtype=np.int32)
        for array in (self._out_indptr, self._out_indices,
                      self._in_indptr, self._in_indices):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_arcs(cls, arcs: Iterable[Tuple[int, int]],
                  num_vertices: Optional[int] = None) -> "DiGraph":
        """Build from ``(source, target)`` pairs.

        Self loops are dropped and duplicate arcs collapsed; the two
        orientations of a pair are distinct arcs.
        """
        arc_list = np.asarray(list(arcs) if not isinstance(arcs, np.ndarray)
                              else arcs, dtype=np.int64)
        if arc_list.size == 0:
            n = int(num_vertices or 0)
            empty_ptr = np.zeros(n + 1, dtype=np.int64)
            empty_idx = np.empty(0, dtype=np.int32)
            return cls(empty_ptr, empty_idx, empty_ptr.copy(), empty_idx)
        if arc_list.ndim != 2 or arc_list.shape[1] != 2:
            raise GraphValidationError(
                f"arcs must be (m, 2)-shaped, got {arc_list.shape}"
            )
        src, dst = arc_list[:, 0], arc_list[:, 1]
        if src.min() < 0 or dst.min() < 0:
            raise GraphValidationError("vertex ids must be non-negative")
        inferred = int(max(src.max(), dst.max())) + 1
        n = inferred if num_vertices is None else int(num_vertices)
        if n < inferred:
            raise GraphValidationError(
                f"num_vertices={n} too small for id {inferred - 1}"
            )
        keep = src != dst
        src, dst = src[keep], dst[keep]
        key = np.unique(src * np.int64(n) + dst)
        src = (key // n).astype(np.int32)
        dst = (key % n).astype(np.int32)
        return cls(*_csr(src, dst, n), *_csr(dst, src, n))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._out_indptr) - 1

    @property
    def num_arcs(self) -> int:
        return len(self._out_indices)

    @property
    def out_indptr(self) -> np.ndarray:
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        return self._out_indices

    @property
    def in_indptr(self) -> np.ndarray:
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        return self._in_indices

    def successors(self, v: int) -> np.ndarray:
        self._check_vertex(v)
        return self._out_indices[self._out_indptr[v]:
                                 self._out_indptr[v + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        self._check_vertex(v)
        return self._in_indices[self._in_indptr[v]:
                                self._in_indptr[v + 1]]

    def out_degree(self, v: Optional[int] = None):
        if v is None:
            return np.diff(self._out_indptr)
        self._check_vertex(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: Optional[int] = None):
        if v is None:
            return np.diff(self._in_indptr)
        self._check_vertex(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def total_degree(self) -> np.ndarray:
        return self.out_degree() + self.in_degree()

    def has_arc(self, u: int, v: int) -> bool:
        row = self.successors(u)
        self._check_vertex(v)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def arcs(self) -> Iterator[Tuple[int, int]]:
        for u in range(self.num_vertices):
            for v in self.successors(u):
                yield u, int(v)

    def remove_vertices(self, vertices) -> "DiGraph":
        """Id-preserving removal (the directed sparsified graph)."""
        n = self.num_vertices
        drop = np.zeros(n, dtype=bool)
        vertex_array = np.asarray(list(vertices), dtype=np.int64)
        if len(vertex_array) and (vertex_array.min() < 0
                                  or vertex_array.max() >= n):
            bad = vertex_array[(vertex_array < 0) | (vertex_array >= n)][0]
            raise VertexError(int(bad), n)
        drop[vertex_array] = True
        src = np.repeat(np.arange(n, dtype=np.int32),
                        np.diff(self._out_indptr))
        dst = self._out_indices
        keep = ~drop[src] & ~drop[dst]
        src, dst = src[keep], dst[keep]
        return DiGraph(*_csr(src, dst, n), *_csr(dst, src, n))

    def reverse(self) -> "DiGraph":
        """The transpose graph (arcs flipped)."""
        return DiGraph(self._in_indptr, self._in_indices,
                       self._out_indptr, self._out_indices)

    def as_undirected_edges(self) -> Iterator[Tuple[int, int]]:
        """Arcs with orientation dropped (for |E_un| accounting)."""
        seen = set()
        for u, v in self.arcs():
            key = (min(u, v), max(u, v))
            if key not in seen:
                seen.add(key)
                yield key

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexError(v, self.num_vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (np.array_equal(self._out_indptr, other._out_indptr)
                and np.array_equal(self._out_indices, other._out_indices))

    def __hash__(self) -> int:  # pragma: no cover
        return object.__hash__(self)

    def __repr__(self) -> str:
        return (f"DiGraph(num_vertices={self.num_vertices}, "
                f"num_arcs={self.num_arcs})")


def _csr(src: np.ndarray, dst: np.ndarray, n: int):
    """Sorted CSR arrays from parallel arc arrays."""
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst.astype(np.int32)
